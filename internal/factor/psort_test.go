package factor

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/faqdb/faq/internal/semiring"
)

// TestParallelSortMatchesSortSlice exercises the chunked merge sort well past
// the parallel threshold and against odd chunk counts.
func TestParallelSortMatchesSortSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 2, parallelSortMin - 1, parallelSortMin, parallelSortMin + 1, 3*parallelSortMin + 17} {
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(1 << 30)
		}
		want := append([]int(nil), keys...)
		sort.Ints(want)
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		parallelSort(order, func(a, b int) bool { return keys[a] < keys[b] })
		for i, o := range order {
			if keys[o] != want[i] {
				t.Fatalf("n=%d: position %d has %d, want %d", n, i, keys[o], want[i])
			}
		}
	}
}

// TestNewSortsLargeFactor checks that the factor constructor keeps rows in
// lexicographic order above the parallel-sort threshold.
func TestNewSortsLargeFactor(t *testing.T) {
	d := semiring.Float()
	rng := rand.New(rand.NewSource(7))
	n := 2*parallelSortMin + 31
	tuples := make([][]int, n)
	values := make([]float64, n)
	for i := range tuples {
		tuples[i] = []int{rng.Intn(1 << 20), rng.Intn(1 << 20)}
		values[i] = 1
	}
	f, err := New(d, []int{0, 1}, tuples, values, func(a, b float64) float64 { return a })
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < f.Size(); i++ {
		if compareRows(f.Row(i-1), f.Row(i)) >= 0 {
			t.Fatalf("rows %d and %d out of order: %v then %v", i-1, i, f.Row(i-1), f.Row(i))
		}
	}
}
