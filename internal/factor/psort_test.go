package factor

import (
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/semiring"
	"github.com/faqdb/faq/internal/sortx"
)

// TestNewSortsLargeFactor checks that the factor constructor keeps rows in
// lexicographic order well past the radix kernel's parallel threshold, so
// the chunk-parallel path is covered through the constructor.
func TestNewSortsLargeFactor(t *testing.T) {
	oldPar := sortx.ParallelMinRows
	sortx.ParallelMinRows = 4096
	defer func() { sortx.ParallelMinRows = oldPar }()

	d := semiring.Float()
	rng := rand.New(rand.NewSource(7))
	n := 2*sortx.ParallelMinRows + 31
	tuples := make([][]int, n)
	values := make([]float64, n)
	for i := range tuples {
		tuples[i] = []int{rng.Intn(1 << 20), rng.Intn(1 << 20)}
		values[i] = 1
	}
	f, err := New(d, []int{0, 1}, tuples, values, func(a, b float64) float64 { return a })
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() == 0 {
		t.Fatal("empty factor")
	}
	for i := 1; i < f.Size(); i++ {
		if compareRows(f.Row(i-1), f.Row(i)) >= 0 {
			t.Fatalf("rows %d and %d out of order: %v then %v", i-1, i, f.Row(i-1), f.Row(i))
		}
	}
}
