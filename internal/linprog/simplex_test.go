package linprog

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestMaximizePackingTextbook(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18; optimum 36 at (2, 6).
	a := [][]float64{{1, 0}, {0, 2}, {3, 2}}
	b := []float64{4, 12, 18}
	c := []float64{3, 5}
	res, err := MaximizePacking(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Value, 36) {
		t.Fatalf("value = %g, want 36", res.Value)
	}
	if !almost(res.X[0], 2) || !almost(res.X[1], 6) {
		t.Fatalf("x = %v, want (2, 6)", res.X)
	}
}

func TestMaximizePackingUnbounded(t *testing.T) {
	// y has no binding constraint.
	a := [][]float64{{1, 0}}
	b := []float64{1}
	c := []float64{1, 1}
	if _, err := MaximizePacking(a, b, c); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestMaximizePackingDegenerate(t *testing.T) {
	// Redundant constraints force degenerate pivots; Bland's rule must not cycle.
	a := [][]float64{{1, 1}, {1, 1}, {2, 2}, {1, 0}}
	b := []float64{1, 1, 2, 1}
	c := []float64{1, 1}
	res, err := MaximizePacking(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Value, 1) {
		t.Fatalf("value = %g, want 1", res.Value)
	}
}

func TestFractionalCoverTriangle(t *testing.T) {
	// Triangle: edges {0,1},{0,2},{1,2}; ρ*({0,1,2}) = 3/2 with λ = 1/2 each.
	sets := [][]int{{0, 1}, {0, 2}, {1, 2}}
	v, lam, err := UniformCover(sets, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(v, 1.5) {
		t.Fatalf("ρ* = %g, want 1.5", v)
	}
	// λ must be a feasible cover with total weight equal to the optimum.
	checkCoverFeasible(t, sets, lam, []int{0, 1, 2}, v)
}

func TestFractionalCoverLoomisWhitney(t *testing.T) {
	// LW(4): edges are all 3-subsets of {0..3}; ρ* = 4/3.
	sets := [][]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}
	v, lam, err := UniformCover(sets, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(v, 4.0/3.0) {
		t.Fatalf("ρ* = %g, want 4/3", v)
	}
	checkCoverFeasible(t, sets, lam, []int{0, 1, 2, 3}, v)
}

func TestFractionalCoverSubsetOfVertices(t *testing.T) {
	// Covering only B = {1} of a path needs a single edge.
	sets := [][]int{{0, 1}, {1, 2}}
	v, _, err := UniformCover(sets, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(v, 1) {
		t.Fatalf("ρ*({1}) = %g, want 1", v)
	}
}

func TestFractionalCoverInfeasible(t *testing.T) {
	sets := [][]int{{0, 1}}
	if _, _, err := UniformCover(sets, []int{0, 2}); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestFractionalCoverEmptyVerts(t *testing.T) {
	v, lam, err := UniformCover([][]int{{0}}, nil)
	if err != nil || v != 0 {
		t.Fatalf("v = %g err = %v, want 0, nil", v, err)
	}
	if len(lam) != 1 {
		t.Fatalf("λ length %d, want 1", len(lam))
	}
}

func TestWeightedCoverPrefersCheapEdge(t *testing.T) {
	// Edge 0 covers everything at cost 10; edges 1 and 2 cover it at cost 1+1.
	sets := [][]int{{0, 1}, {0}, {1}}
	cost := []float64{10, 1, 1}
	v, lam, err := FractionalCover(sets, cost, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(v, 2) {
		t.Fatalf("value = %g, want 2", v)
	}
	checkCoverFeasibleWeighted(t, sets, cost, lam, []int{0, 1}, v)
}

// checkCoverFeasible verifies that λ is feasible and achieves value v.
func checkCoverFeasible(t *testing.T, sets [][]int, lam []float64, verts []int, v float64) {
	t.Helper()
	cost := make([]float64, len(sets))
	for i := range cost {
		cost[i] = 1
	}
	checkCoverFeasibleWeighted(t, sets, cost, lam, verts, v)
}

func checkCoverFeasibleWeighted(t *testing.T, sets [][]int, cost, lam []float64, verts []int, v float64) {
	t.Helper()
	total := 0.0
	for j, l := range lam {
		if l < -1e-7 {
			t.Fatalf("negative λ[%d] = %g", j, l)
		}
		total += l * cost[j]
	}
	if !almost(total, v) {
		t.Fatalf("Σ cost·λ = %g but reported value %g", total, v)
	}
	for _, vert := range verts {
		cov := 0.0
		for j, s := range sets {
			for _, u := range s {
				if u == vert {
					cov += lam[j]
					break
				}
			}
		}
		if cov < 1-1e-6 {
			t.Fatalf("vertex %d covered only %g", vert, cov)
		}
	}
}

// Property: on random hypergraphs where every vertex is covered, the LP value
// lies between the best integral cover divided by the max edge size and the
// best integral cover, and the returned λ is feasible.
func TestQuickRandomCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		nv := 1 + rng.Intn(6)
		ne := 1 + rng.Intn(6)
		sets := make([][]int, ne)
		covered := make([]bool, nv)
		for j := range sets {
			sz := 1 + rng.Intn(nv)
			seen := map[int]bool{}
			for len(seen) < sz {
				seen[rng.Intn(nv)] = true
			}
			for v := range seen {
				sets[j] = append(sets[j], v)
				covered[v] = true
			}
		}
		verts := []int{}
		for v, ok := range covered {
			if ok {
				verts = append(verts, v)
			}
		}
		if len(verts) == 0 {
			continue
		}
		val, lam, err := UniformCover(sets, verts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkCoverFeasible(t, sets, lam, verts, val)
		best := bestIntegralCover(sets, verts)
		if val > float64(best)+1e-6 {
			t.Fatalf("trial %d: LP %g exceeds integral optimum %d", trial, val, best)
		}
		if best > len(sets) {
			t.Fatalf("trial %d: integral cover bogus", trial)
		}
	}
}

// bestIntegralCover brute-forces the minimum number of edges covering verts.
func bestIntegralCover(sets [][]int, verts []int) int {
	best := len(sets) + 1
	for mask := 0; mask < 1<<len(sets); mask++ {
		n := 0
		cov := map[int]bool{}
		for j := range sets {
			if mask&(1<<j) != 0 {
				n++
				for _, v := range sets[j] {
					cov[v] = true
				}
			}
		}
		ok := true
		for _, v := range verts {
			if !cov[v] {
				ok = false
				break
			}
		}
		if ok && n < best {
			best = n
		}
	}
	return best
}

func BenchmarkTriangleCoverLP(b *testing.B) {
	sets := [][]int{{0, 1}, {0, 2}, {1, 2}}
	verts := []int{0, 1, 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := UniformCover(sets, verts); err != nil {
			b.Fatal(err)
		}
	}
}
