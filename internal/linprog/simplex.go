// Package linprog implements a small dense simplex solver.
//
// The FAQ engine needs linear programs of a single shape: fractional edge
// covers (Section 4.2 of the paper) and their size-weighted variant, the
// AGM bound.  Both are covering LPs
//
//	min  Σ_S c_S λ_S   s.t.  Σ_{S ∋ v} λ_S ≥ 1 for all v ∈ B,  λ ≥ 0
//
// with c ≥ 0.  We solve them through the dual packing LP
//
//	max  Σ_v y_v       s.t.  Σ_{v ∈ S∩B} y_v ≤ c_S for all S,  y ≥ 0
//
// which is feasible at y = 0, so a single-phase primal simplex with a slack
// basis suffices.  Query hypergraphs have tens of vertices and edges, so a
// dense tableau is appropriate.
package linprog

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnbounded is returned when the packing LP is unbounded, which for a
// covering instance means some vertex is covered by no edge.
var ErrUnbounded = errors.New("linprog: unbounded (covering instance infeasible)")

const eps = 1e-9

// Result holds the outcome of a simplex solve.
type Result struct {
	Value float64   // optimal objective value
	X     []float64 // optimal primal solution of the solved (packing) LP
	Dual  []float64 // dual values, one per constraint row
}

// MaximizePacking solves max c·x subject to Ax ≤ b, x ≥ 0, where b ≥ 0.
// A is given in row-major order: a[i] is the coefficient row of constraint i.
// It returns ErrUnbounded if the LP is unbounded.
func MaximizePacking(a [][]float64, b, c []float64) (Result, error) {
	m := len(a)
	n := len(c)
	for i, row := range a {
		if len(row) != n {
			return Result{}, fmt.Errorf("linprog: row %d has %d coefficients, want %d", i, len(row), n)
		}
		if b[i] < -eps {
			return Result{}, fmt.Errorf("linprog: negative rhs %g in row %d", b[i], i)
		}
	}

	// Tableau: m rows of n structural + m slack columns + RHS,
	// plus an objective row of reduced costs (z-row negated).
	width := n + m + 1
	t := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, width)
		copy(t[i], a[i])
		t[i][n+i] = 1
		rhs := b[i]
		if rhs < 0 {
			rhs = 0
		}
		t[i][width-1] = rhs
	}
	obj := make([]float64, width)
	copy(obj, c)
	t[m] = obj

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	// Bland's rule prevents cycling on the degenerate instances that arise
	// from hypergraphs with nested edges.
	maxIter := 200 * (m + n + 8)
	for iter := 0; ; iter++ {
		if iter > maxIter {
			return Result{}, errors.New("linprog: iteration limit exceeded")
		}
		// Entering variable: smallest index with positive reduced cost.
		col := -1
		for j := 0; j < n+m; j++ {
			if obj[j] > eps {
				col = j
				break
			}
		}
		if col < 0 {
			break // optimal
		}
		// Leaving variable: minimum ratio, ties by smallest basis index.
		row := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][col] > eps {
				r := t[i][width-1] / t[i][col]
				if r < best-eps || (r < best+eps && (row < 0 || basis[i] < basis[row])) {
					best = r
					row = i
				}
			}
		}
		if row < 0 {
			return Result{}, ErrUnbounded
		}
		pivot(t, basis, row, col)
	}

	res := Result{
		Value: -obj[width-1],
		X:     make([]float64, n),
		Dual:  make([]float64, m),
	}
	for i, bv := range basis {
		if bv < n {
			res.X[bv] = t[i][width-1]
		}
	}
	// At optimality the reduced cost of slack i is -y_i.
	for i := 0; i < m; i++ {
		res.Dual[i] = -obj[n+i]
		if res.Dual[i] < 0 && res.Dual[i] > -eps {
			res.Dual[i] = 0
		}
	}
	return res, nil
}

func pivot(t [][]float64, basis []int, row, col int) {
	width := len(t[row])
	p := t[row][col]
	for j := 0; j < width; j++ {
		t[row][j] /= p
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			t[i][j] -= f * t[row][j]
		}
	}
	if row < len(basis) {
		basis[row] = col
	}
}

// FractionalCover solves the covering LP
//
//	min Σ_j cost_j λ_j  s.t.  Σ_{j : member(j, v)} λ_j ≥ 1 for every v ∈ verts, λ ≥ 0,
//
// where sets[j] lists the vertices edge j contains.  It returns the optimal
// value and an optimal λ.  Costs must be non-negative.  If some vertex of
// verts lies in no set the instance is infeasible and ErrUnbounded is
// returned.
func FractionalCover(sets [][]int, cost []float64, verts []int) (float64, []float64, error) {
	if len(sets) != len(cost) {
		return 0, nil, fmt.Errorf("linprog: %d sets but %d costs", len(sets), len(cost))
	}
	if len(verts) == 0 {
		return 0, make([]float64, len(sets)), nil
	}
	idx := make(map[int]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	// Dual packing LP: variables y_v for v ∈ verts, one constraint per set.
	m := len(sets)
	n := len(verts)
	a := make([][]float64, m)
	b := make([]float64, m)
	for j, s := range sets {
		if cost[j] < -eps {
			return 0, nil, fmt.Errorf("linprog: negative cost %g for set %d", cost[j], j)
		}
		row := make([]float64, n)
		for _, v := range s {
			if i, ok := idx[v]; ok {
				row[i] = 1
			}
		}
		a[j] = row
		b[j] = cost[j]
	}
	c := make([]float64, n)
	for i := range c {
		c[i] = 1
	}
	res, err := MaximizePacking(a, b, c)
	if err != nil {
		return 0, nil, err
	}
	// λ is the dual of the packing LP, i.e. the primal of the cover.
	return res.Value, res.Dual, nil
}

// UniformCover solves FractionalCover with all costs 1; the optimal value is
// the fractional edge cover number ρ*(verts) of the hypergraph given by sets.
func UniformCover(sets [][]int, verts []int) (float64, []float64, error) {
	cost := make([]float64, len(sets))
	for i := range cost {
		cost[i] = 1
	}
	return FractionalCover(sets, cost, verts)
}
