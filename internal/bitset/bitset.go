// Package bitset provides a compact set of small non-negative integers.
//
// The FAQ engine manipulates many vertex sets of query hypergraphs
// (hyperedges, elimination sets U_k, tree-decomposition bags).  Queries are
// small (tens of variables) but set operations are in inner loops of the
// width-computation dynamic programs, so sets are stored as bit vectors.
//
// The zero value of Set is the empty set and is ready to use.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a set of small non-negative integers backed by a bit vector.
// Methods never mutate their receiver unless documented otherwise; the
// mutating methods (Add, Remove, UnionWith, ...) have pointer receivers.
type Set struct {
	words []uint64
}

// New returns a set containing the given elements.
func New(elems ...int) Set {
	var s Set
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// FromSlice returns a set containing every element of elems.
func FromSlice(elems []int) Set { return New(elems...) }

// Range returns the set {0, 1, ..., n-1}.
func Range(n int) Set {
	var s Set
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}

func (s *Set) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts e into the set.
func (s *Set) Add(e int) {
	if e < 0 {
		panic("bitset: negative element " + strconv.Itoa(e))
	}
	w := e / wordBits
	s.grow(w)
	s.words[w] |= 1 << uint(e%wordBits)
}

// Remove deletes e from the set; removing an absent element is a no-op.
func (s *Set) Remove(e int) {
	if e < 0 {
		return
	}
	w := e / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(e%wordBits)
	}
}

// Contains reports whether e is in the set.
func (s Set) Contains(e int) bool {
	if e < 0 {
		return false
	}
	w := e / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(e%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no elements.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Union returns s ∪ t without modifying either.
func (s Set) Union(t Set) Set {
	c := s.Clone()
	c.UnionWith(t)
	return c
}

// UnionWith adds every element of t to s.
func (s *Set) UnionWith(t Set) {
	s.grow(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	c := Set{words: make([]uint64, n)}
	for i := 0; i < n; i++ {
		c.words[i] = s.words[i] & t.words[i]
	}
	return c
}

// Intersects reports whether s ∩ t is non-empty.
func (s Set) Intersects(t Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Minus returns s \ t.
func (s Set) Minus(t Set) Set {
	c := s.Clone()
	n := len(c.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		c.words[i] &^= t.words[i]
	}
	return c
}

// SubsetOf reports whether every element of s is in t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same elements.
func (s Set) Equal(t Set) bool {
	return s.SubsetOf(t) && t.SubsetOf(s)
}

// Elems returns the elements in increasing order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Len())
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// Min returns the smallest element, or -1 if the set is empty.
func (s Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// ForEach calls f on each element in increasing order.
func (s Set) ForEach(f func(e int)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(i*wordBits + b)
			w &= w - 1
		}
	}
}

// Key returns a string usable as a map key identifying the set contents.
// Trailing zero words are ignored so equal sets always produce equal keys.
func (s Set) Key() string {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	var b strings.Builder
	b.Grow(n * 8)
	for i := 0; i < n; i++ {
		w := s.words[i]
		for j := 0; j < 8; j++ {
			b.WriteByte(byte(w >> uint(8*j)))
		}
	}
	return b.String()
}

// String renders the set like "{1, 4, 7}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(e int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(e))
	})
	b.WriteByte('}')
	return b.String()
}
