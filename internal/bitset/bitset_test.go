package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var s Set
	if !s.IsEmpty() {
		t.Fatal("zero value should be empty")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if s.Contains(0) || s.Contains(100) {
		t.Fatal("empty set should contain nothing")
	}
	if s.Min() != -1 {
		t.Fatalf("Min of empty = %d, want -1", s.Min())
	}
	if got := s.String(); got != "{}" {
		t.Fatalf("String = %q, want {}", got)
	}
}

func TestAddRemoveContains(t *testing.T) {
	var s Set
	s.Add(3)
	s.Add(70) // crosses a word boundary
	s.Add(3)  // duplicate
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(3) || !s.Contains(70) || s.Contains(4) {
		t.Fatal("membership wrong")
	}
	s.Remove(3)
	if s.Contains(3) || s.Len() != 1 {
		t.Fatal("remove failed")
	}
	s.Remove(999) // absent, different word: no-op
	s.Remove(-1)  // negative: no-op
	if s.Len() != 1 {
		t.Fatal("no-op removes changed the set")
	}
}

func TestNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) should panic")
		}
	}()
	var s Set
	s.Add(-1)
}

func TestSetAlgebra(t *testing.T) {
	a := New(1, 2, 3, 64, 65)
	b := New(3, 4, 65, 200)
	if got := a.Union(b).Elems(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 64, 65, 200}) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersect(b).Elems(); !reflect.DeepEqual(got, []int{3, 65}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Minus(b).Elems(); !reflect.DeepEqual(got, []int{1, 2, 64}) {
		t.Fatalf("Minus = %v", got)
	}
	if !a.Intersects(b) {
		t.Fatal("a and b should intersect")
	}
	if a.Intersects(New(7, 300)) {
		t.Fatal("disjoint sets reported as intersecting")
	}
	if !New(1, 2).SubsetOf(a) || a.SubsetOf(b) {
		t.Fatal("SubsetOf wrong")
	}
	if !a.Equal(New(65, 64, 3, 2, 1)) {
		t.Fatal("Equal should ignore insertion order")
	}
}

func TestRangeAndMin(t *testing.T) {
	r := Range(130)
	if r.Len() != 130 {
		t.Fatalf("Range(130).Len = %d", r.Len())
	}
	if r.Min() != 0 {
		t.Fatalf("Min = %d", r.Min())
	}
	r.Remove(0)
	r.Remove(1)
	if r.Min() != 2 {
		t.Fatalf("Min after removal = %d", r.Min())
	}
}

func TestKeyEqualSetsEqualKeys(t *testing.T) {
	a := New(5, 9)
	b := New(9)
	b.Add(5)
	// Force b to carry trailing zero words, then check the key still matches.
	b.Add(300)
	b.Remove(300)
	if a.Key() != b.Key() {
		t.Fatal("equal sets should have equal keys regardless of capacity")
	}
	if a.Key() == New(5, 10).Key() {
		t.Fatal("different sets should have different keys")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := New(1, 2)
	c := a.Clone()
	c.Add(3)
	if a.Contains(3) {
		t.Fatal("Clone aliases the original")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(99, 0, 64, 5)
	var got []int
	s.ForEach(func(e int) { got = append(got, e) })
	if !sort.IntsAreSorted(got) {
		t.Fatalf("ForEach order not sorted: %v", got)
	}
	if !reflect.DeepEqual(got, s.Elems()) {
		t.Fatal("ForEach and Elems disagree")
	}
}

// property: Union/Intersect/Minus agree with a map-based reference model.
func TestQuickAgainstModel(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var a, b Set
		ma, mb := map[int]bool{}, map[int]bool{}
		for _, x := range xs {
			a.Add(int(x))
			ma[int(x)] = true
		}
		for _, y := range ys {
			b.Add(int(y))
			mb[int(y)] = true
		}
		u := a.Union(b)
		i := a.Intersect(b)
		d := a.Minus(b)
		for e := 0; e < 256; e++ {
			if u.Contains(e) != (ma[e] || mb[e]) {
				return false
			}
			if i.Contains(e) != (ma[e] && mb[e]) {
				return false
			}
			if d.Contains(e) != (ma[e] && !mb[e]) {
				return false
			}
		}
		return u.Len() == len(unionMap(ma, mb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func unionMap(a, b map[int]bool) map[int]bool {
	u := map[int]bool{}
	for k := range a {
		u[k] = true
	}
	for k := range b {
		u[k] = true
	}
	return u
}

// property: Key is injective on distinct sets (over a random sample).
func TestQuickKeyInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[string]string{}
	for i := 0; i < 2000; i++ {
		var s Set
		for j := 0; j < rng.Intn(10); j++ {
			s.Add(rng.Intn(200))
		}
		k := s.Key()
		if prev, ok := seen[k]; ok && prev != s.String() {
			t.Fatalf("key collision: %s vs %s", prev, s.String())
		}
		seen[k] = s.String()
	}
}

func BenchmarkUnionWith(b *testing.B) {
	x := Range(512)
	y := New(1, 100, 300, 511)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := y.Clone()
		c.UnionWith(x)
	}
}
