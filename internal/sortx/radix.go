// The LSD radix kernel: rows pack into fixed-width byte keys, then
// counting passes over 8-bit digits permute (key, index) pairs between
// ping-pong buffers from the least significant digit up.  Counting sort is
// stable, so the composed permutation is the stable lexicographic argsort.
package sortx

import "math/bits"

// kv is the unit the counting passes move: a packed key and the row index
// it carries.  One struct store per element keeps the scatter a single
// write stream instead of parallel key and index streams.
type kv struct {
	key uint64
	idx int32
}

// bytePos names one byte of one column: the digit read at a counting pass.
type bytePos struct {
	col   int
	shift uint
}

// radixArgsort returns the stable lexicographic argsort of n rows of
// width k.
//
// A first scan OR- and AND-accumulates each column (over sign-flipped
// values, so unsigned byte order equals signed column order): a byte
// position is constant across the block exactly when the accumulators
// agree there, and constant digits cannot change the order.  Small
// domains leave most positions constant — typically two live bytes per
// column — so the varying positions usually fit in one uint64 regardless
// of arity.  When they do (eight or fewer), a second scan gathers them
// into a single compact key per row, least significant first, building
// the per-digit histograms in the same pass; then one counting pass per
// varying byte scatters (key, index) pairs, the final pass writing row
// indices straight to the result.  Only the rare wide case — more than
// eight varying bytes: high arity over large domains — pays for
// multi-word keys.
func radixArgsort(rows []int32, k, n int) []int {
	if n == 0 {
		return []int{}
	}
	ors := make([]uint32, k)
	ands := make([]uint32, k)
	for c := 0; c < k; c++ {
		u := uint32(rows[c]) ^ 0x80000000
		ors[c], ands[c] = u, u
	}
	for r := 1; r < n; r++ {
		row := rows[r*k : r*k+k]
		for c, x := range row {
			u := uint32(x) ^ 0x80000000
			ors[c] |= u
			ands[c] &= u
		}
	}

	// Varying byte positions in least-significant-first pass order: the
	// last column's low byte first, the first column's high byte last.
	varying := make([]bytePos, 0, 4*k)
	for c := k - 1; c >= 0; c-- {
		diff := ors[c] ^ ands[c]
		for b := uint(0); b < 4; b++ {
			if diff>>(8*b)&0xff != 0 {
				varying = append(varying, bytePos{c, 8 * b})
			}
		}
	}

	m := len(varying)
	idxBits := uint(bits.Len(uint(n - 1)))
	switch {
	case m == 0:
		// Every row is identical: the stable order is the identity.
		return identity(n)
	case 8*m+int(idxBits) <= 64:
		return packedArgsort(rows, k, n, varying, idxBits)
	case m <= 8:
		return compactArgsort(rows, k, n, varying)
	case m <= 16:
		return compact2Argsort(rows, k, n, varying)
	default:
		return wideArgsort(rows, k, n, varying)
	}
}

// packedArgsort is the tightest case: the varying bytes AND the row index
// fit one uint64 together (key above, index in the low idxBits), so each
// counting pass moves eight bytes per element — half the (key, index)
// pair — and no separate index array exists at all.  Equal rows differ
// only in their index bits, which sit below every digit, so the pack
// scan's ascending-index order plus counting-sort stability yields the
// stable permutation.
func packedArgsort(rows []int32, k, n int, varying []bytePos, idxBits uint) []int {
	m := len(varying)
	keysA := make([]uint64, n)
	hist := make([]int32, m*256)
	for i := 0; i < n; i++ {
		row := rows[i*k : i*k+k]
		ck := uint64(i)
		for j, bp := range varying {
			b := byte((uint32(row[bp.col]) ^ 0x80000000) >> bp.shift)
			ck |= uint64(b) << (idxBits + uint(j)*8)
			hist[j*256+int(b)]++
		}
		keysA[i] = ck
	}

	out := make([]int, n)
	mask := uint64(1)<<idxBits - 1
	var keysB []uint64
	if m > 1 {
		keysB = make([]uint64, n)
	}
	var offs [256]int32
	for t := 0; t < m; t++ {
		h := hist[t*256 : t*256+256]
		sum := int32(0)
		for d := 0; d < 256; d++ {
			offs[d] = sum
			sum += h[d]
		}
		shift := idxBits + uint(t)*8
		if t == m-1 {
			for i := 0; i < n; i++ {
				key := keysA[i]
				d := byte(key >> shift)
				j := offs[d]
				offs[d] = j + 1
				out[j] = int(key & mask)
			}
			break
		}
		for i := 0; i < n; i++ {
			key := keysA[i]
			d := byte(key >> shift)
			j := offs[d]
			offs[d] = j + 1
			keysB[j] = key
		}
		keysA, keysB = keysB, keysA
	}
	return out
}

// compactArgsort handles keys whose varying bytes fit one uint64: byte t
// of the compact key is the digit of counting pass t.
func compactArgsort(rows []int32, k, n int, varying []bytePos) []int {
	m := len(varying)
	pairsA := make([]kv, n)
	hist := make([]int32, m*256)
	for i := 0; i < n; i++ {
		row := rows[i*k : i*k+k]
		var ck uint64
		for j, bp := range varying {
			b := byte((uint32(row[bp.col]) ^ 0x80000000) >> bp.shift)
			ck |= uint64(b) << (uint(j) * 8)
			hist[j*256+int(b)]++
		}
		pairsA[i] = kv{ck, int32(i)}
	}

	out := make([]int, n)
	var pairsB []kv
	if m > 1 {
		pairsB = make([]kv, n)
	}
	var offs [256]int32
	for t := 0; t < m; t++ {
		h := hist[t*256 : t*256+256]
		sum := int32(0)
		for d := 0; d < 256; d++ {
			offs[d] = sum
			sum += h[d]
		}
		shift := uint(t) * 8
		if t == m-1 {
			for i := 0; i < n; i++ {
				p := pairsA[i]
				d := byte(p.key >> shift)
				j := offs[d]
				offs[d] = j + 1
				out[j] = int(p.idx)
			}
			break
		}
		for i := 0; i < n; i++ {
			p := pairsA[i]
			d := byte(p.key >> shift)
			j := offs[d]
			offs[d] = j + 1
			pairsB[j] = p
		}
		pairsA, pairsB = pairsB, pairsA
	}
	return out
}

// kv2 extends kv to sixteen varying bytes: passes 0-7 read digits from
// k1 (the less significant word), passes 8-15 from k0.
type kv2 struct {
	k0, k1 uint64
	idx    int32
}

// compact2Argsort is compactArgsort for nine to sixteen varying bytes —
// arity four through eight over realistic domains — moving 24-byte
// (key, key, index) triples instead of multi-word copies.
func compact2Argsort(rows []int32, k, n int, varying []bytePos) []int {
	m := len(varying)
	pairsA := make([]kv2, n)
	hist := make([]int32, m*256)
	for i := 0; i < n; i++ {
		row := rows[i*k : i*k+k]
		var c0, c1 uint64
		for j, bp := range varying {
			b := byte((uint32(row[bp.col]) ^ 0x80000000) >> bp.shift)
			if j < 8 {
				c1 |= uint64(b) << (uint(j) * 8)
			} else {
				c0 |= uint64(b) << (uint(j-8) * 8)
			}
			hist[j*256+int(b)]++
		}
		pairsA[i] = kv2{c0, c1, int32(i)}
	}

	out := make([]int, n)
	pairsB := make([]kv2, n)
	var offs [256]int32
	for t := 0; t < m; t++ {
		h := hist[t*256 : t*256+256]
		sum := int32(0)
		for d := 0; d < 256; d++ {
			offs[d] = sum
			sum += h[d]
		}
		var shift uint
		lowWord := t < 8
		if lowWord {
			shift = uint(t) * 8
		} else {
			shift = uint(t-8) * 8
		}
		if t == m-1 {
			for i := 0; i < n; i++ {
				p := &pairsA[i]
				word := p.k0
				if lowWord {
					word = p.k1
				}
				d := byte(word >> shift)
				j := offs[d]
				offs[d] = j + 1
				out[j] = int(p.idx)
			}
			break
		}
		for i := 0; i < n; i++ {
			p := pairsA[i]
			word := p.k0
			if lowWord {
				word = p.k1
			}
			d := byte(word >> shift)
			j := offs[d]
			offs[d] = j + 1
			pairsB[j] = p
		}
		pairsA, pairsB = pairsB, pairsA
	}
	return out
}

// wideArgsort is the multi-word fallback: each row packs into
// ceil(k/2) uint64 words — each word holds two sign-flipped columns, the
// earlier column in the high half, so unsigned word order equals
// lexicographic order over the pair — and every counting pass moves the
// whole key alongside its index.
func wideArgsort(rows []int32, k, n int, varying []bytePos) []int {
	w := (k + 1) / 2
	keysA := make([]uint64, n*w)
	for r := 0; r < n; r++ {
		row := rows[r*k : r*k+k]
		kb := keysA[r*w : r*w+w]
		for c, x := range row {
			u := uint64(uint32(x) ^ 0x80000000)
			if c&1 == 0 {
				kb[c>>1] = u << 32
			} else {
				kb[c>>1] |= u
			}
		}
	}

	// Histograms for the varying positions only, one scan for all passes.
	m := len(varying)
	hist := make([]int32, m*256)
	words := make([]int, m)   // word index holding pass t's digit
	shifts := make([]uint, m) // bit shift of pass t's digit within its word
	for t, bp := range varying {
		words[t] = bp.col >> 1
		shifts[t] = bp.shift
		if bp.col&1 == 0 {
			shifts[t] += 32
		}
	}
	for r := 0; r < n; r++ {
		kb := keysA[r*w : r*w+w]
		for t := 0; t < m; t++ {
			hist[t*256+int(byte(kb[words[t]]>>shifts[t]))]++
		}
	}

	idxA := make([]int32, n)
	for i := range idxA {
		idxA[i] = int32(i)
	}
	keysB := make([]uint64, n*w)
	idxB := make([]int32, n)
	var offs [256]int32
	for t := 0; t < m; t++ {
		h := hist[t*256 : t*256+256]
		sum := int32(0)
		for d := 0; d < 256; d++ {
			offs[d] = sum
			sum += h[d]
		}
		wi, shift := words[t], shifts[t]
		for i := 0; i < n; i++ {
			kb := keysA[i*w : i*w+w]
			d := byte(kb[wi] >> shift)
			j := int(offs[d])
			offs[d]++
			copy(keysB[j*w:j*w+w], kb)
			idxB[j] = idxA[i]
		}
		keysA, keysB = keysB, keysA
		idxA, idxB = idxB, idxA
	}
	out := make([]int, n)
	for i, x := range idxA {
		out[i] = int(x)
	}
	return out
}
