// The chunk-parallel variant: very large blocks split into GOMAXPROCS
// contiguous chunks that radix-argsort concurrently, then pairs of sorted
// runs merge concurrently until one run remains — the worker split the
// retired factor.parallelSort used, with the radix kernel replacing
// sort.Slice inside each chunk.  Chunks partition the block by row index
// and the merge prefers the left run on ties, so the composed permutation
// is exactly the stable sequential one.
package sortx

import (
	"runtime"
	"sync"
)

// parallelArgsort is radixArgsort with the chunk sorts fanned out over
// GOMAXPROCS goroutines.  Callers hold the sortActive gate.
func parallelArgsort(rows []int32, k, n int) []int {
	nc := runtime.GOMAXPROCS(0)
	if nc > n {
		nc = n
	}
	bounds := make([]int, nc+1)
	for i := range bounds {
		bounds[i] = i * n / nc
	}
	order := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < nc; i++ {
		lo, hi := bounds[i], bounds[i+1]
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sub := radixArgsort(rows[lo*k:hi*k], k, hi-lo)
			for j, o := range sub {
				order[lo+j] = o + lo
			}
		}(lo, hi)
	}
	wg.Wait()

	// Chunks hold disjoint ascending index ranges, so the tie rule "prefer
	// the left run" keeps equal rows in input order without comparing
	// indices.
	less := func(a, b int) bool {
		return compareRows(rows[a*k:a*k+k], rows[b*k:b*k+k]) < 0
	}
	src, dst := order, make([]int, n)
	for len(bounds) > 2 {
		next := make([]int, 0, len(bounds)/2+2)
		next = append(next, 0)
		i := 0
		for ; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			wg.Add(1)
			go func(lo, mid, hi int) {
				defer wg.Done()
				mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi], less)
			}(lo, mid, hi)
			next = append(next, hi)
		}
		if i+1 < len(bounds) { // odd run out: carry it over unchanged
			copy(dst[bounds[i]:bounds[i+1]], src[bounds[i]:bounds[i+1]])
			next = append(next, bounds[i+1])
		}
		wg.Wait()
		src, dst = dst, src
		bounds = next
	}
	return src
}

// mergeRuns merges two sorted runs into out (len(out) = len(a) + len(b)),
// preferring a on ties.
func mergeRuns(out, a, b []int, less func(x, y int) bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[i+j] = b[j]
			j++
		} else {
			out[i+j] = a[i]
			i++
		}
	}
	copy(out[i+j:], a[i:])
	copy(out[i+j:], b[j:])
}
