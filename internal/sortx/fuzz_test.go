package sortx

import (
	"encoding/binary"
	"testing"
)

// FuzzRadixArgsort holds the radix kernel to bit-identical agreement with
// the independent stable reference over arbitrary blocks: arity 1-6,
// arbitrary int32 cell values (negatives and sign-byte boundaries
// included), with the cutoff and parallel thresholds forced low enough
// that fuzz-sized inputs reach every code path.
func FuzzRadixArgsort(f *testing.F) {
	f.Add(3, []byte{0, 0, 0, 1, 255, 255, 255, 255, 0, 0, 0, 2})
	f.Add(1, []byte{128, 0, 0, 0, 127, 255, 255, 255})
	f.Add(6, make([]byte, 6*4*5))
	f.Fuzz(func(t *testing.T, arity int, data []byte) {
		k := 1 + (abs(arity) % 6)
		n := len(data) / (4 * k)
		if n == 0 {
			return
		}
		if n > 4096 {
			n = 4096
		}
		rows := make([]int32, n*k)
		for i := range rows {
			rows[i] = int32(binary.LittleEndian.Uint32(data[i*4:]))
		}
		want := refStable(rows, k, n)

		checkStablePermutation(t, "radix", rows, k, radixArgsort(rows, k, n), want)

		oldMin, oldPar := RadixMinRows, ParallelMinRows
		RadixMinRows, ParallelMinRows = 1, 64
		defer func() { RadixMinRows, ParallelMinRows = oldMin, oldPar }()
		checkStablePermutation(t, "argsort", rows, k, Argsort(rows, k, n, true), want)
		checkSortedRows(t, "unstable", rows, k, Argsort(rows, k, n, false), want)
	})
}

func abs(x int) int {
	if x < 0 {
		if x == -x { // MinInt
			return 0
		}
		return -x
	}
	return x
}
