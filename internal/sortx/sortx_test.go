// Differential tests: the radix kernel (sequential and chunk-parallel)
// must reproduce the comparison argsort exactly — the identical permutation
// in stable mode, the identical sorted row sequence in unstable mode
// (where duplicate rows leave the comparison sort free to pick either
// order).
package sortx

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// randomBlock builds an n×k block whose values span lo..hi-1, so tests
// cover negative values and sign-byte boundaries.
func randomBlock(rng *rand.Rand, k, n int, lo, hi int32) []int32 {
	rows := make([]int32, n*k)
	for i := range rows {
		rows[i] = lo + int32(rng.Int63n(int64(hi)-int64(lo)))
	}
	return rows
}

// refStable is the reference stable argsort: sort.SliceStable over the row
// comparator, independent of every code path under test.
func refStable(rows []int32, k, n int) []int {
	order := identity(n)
	sort.SliceStable(order, func(a, b int) bool {
		return compareRows(rows[order[a]*k:order[a]*k+k], rows[order[b]*k:order[b]*k+k]) < 0
	})
	return order
}

func checkStablePermutation(t *testing.T, name string, rows []int32, k int, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d indices, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: position %d has row %d (%v), want row %d (%v)", name, i,
				got[i], rows[got[i]*k:got[i]*k+k], want[i], rows[want[i]*k:want[i]*k+k])
		}
	}
}

// checkSortedRows verifies an unstable result: got must be a permutation
// of 0..n-1 whose row sequence is lexicographically non-decreasing and
// identical to the reference row sequence.
func checkSortedRows(t *testing.T, name string, rows []int32, k int, got, ref []int) {
	t.Helper()
	seen := make([]bool, len(got))
	for _, o := range got {
		if o < 0 || o >= len(got) || seen[o] {
			t.Fatalf("%s: not a permutation (index %d)", name, o)
		}
		seen[o] = true
	}
	for i := range got {
		a := rows[got[i]*k : got[i]*k+k]
		b := rows[ref[i]*k : ref[i]*k+k]
		if compareRows(a, b) != 0 {
			t.Fatalf("%s: position %d holds row %v, want %v", name, i, a, b)
		}
	}
}

func TestRadixMatchesComparison(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cases := []struct {
		k, n   int
		lo, hi int32
	}{
		{1, 1000, 0, 16},                          // heavy duplication
		{1, 5000, math.MinInt32, math.MaxInt32},   // full signed range
		{2, 4000, -100, 100},                      // negatives, duplicates
		{3, 6000, 0, 3000},                        // the permuted-build regime
		{4, 3000, -5, 5},                          // odd arity padding + dups
		{5, 2000, math.MinInt32, math.MaxInt32},   // odd arity, full range
		{6, 2500, -1 << 20, 1 << 20},              // W=3 key width
		{3, RadixMinRows, 0, 4},                   // exactly at the cutoff
		{2, RadixMinRows - 1, 0, 4},               // just below: comparison path
		{4, 1, math.MinInt32, math.MaxInt32 - 10}, // trivial
	}
	for _, tc := range cases {
		rows := randomBlock(rng, tc.k, tc.n, tc.lo, tc.hi)
		want := refStable(rows, tc.k, tc.n)
		got := Argsort(rows, tc.k, tc.n, true)
		checkStablePermutation(t, "stable", rows, tc.k, got, want)
		checkSortedRows(t, "unstable", rows, tc.k, Argsort(rows, tc.k, tc.n, false), want)
		// The raw kernels must agree regardless of the cutoff.
		if tc.n > 1 {
			checkStablePermutation(t, "radix", rows, tc.k, radixArgsort(rows, tc.k, tc.n), want)
			checkStablePermutation(t, "comparison", rows, tc.k,
				comparisonArgsort(rows, tc.k, tc.n, true), want)
		}
	}
}

func TestArgsortEdgeCases(t *testing.T) {
	if got := Argsort(nil, 3, 0, true); len(got) != 0 {
		t.Fatalf("n=0: got %v", got)
	}
	if got := Argsort([]int32{5, 6}, 2, 1, true); len(got) != 1 || got[0] != 0 {
		t.Fatalf("n=1: got %v", got)
	}
	// k=0: every row is the empty tuple; stable order is the identity.
	got := Argsort(nil, 0, 4, true)
	for i, o := range got {
		if o != i {
			t.Fatalf("k=0: position %d has %d", i, o)
		}
	}
}

// TestParallelArgsortMatchesSequential forces the chunk-parallel path on a
// small block and pins it to the stable sequential permutation, including
// across repeated runs (determinism) and odd chunk counts.
func TestParallelArgsortMatchesSequential(t *testing.T) {
	oldPar := ParallelMinRows
	ParallelMinRows = 512
	defer func() { ParallelMinRows = oldPar }()

	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{512, 1000, 4097, 20000} {
		for _, k := range []int{1, 2, 3, 5} {
			rows := randomBlock(rng, k, n, -50, 50) // duplicates guaranteed
			want := refStable(rows, k, n)
			for trial := 0; trial < 3; trial++ {
				got := Argsort(rows, k, n, true)
				checkStablePermutation(t, "parallel", rows, k, got, want)
			}
		}
	}
}

// TestParallelGateDegrades proves a sort while the gate is held still
// returns the identical permutation via the sequential kernel.
func TestParallelGateDegrades(t *testing.T) {
	oldPar := ParallelMinRows
	ParallelMinRows = 256
	defer func() { ParallelMinRows = oldPar }()

	rng := rand.New(rand.NewSource(12))
	rows := randomBlock(rng, 2, 5000, -10, 10)
	want := Argsort(rows, 2, 5000, true)

	if !sortActive.CompareAndSwap(false, true) {
		t.Fatal("sort gate unexpectedly held")
	}
	got := Argsort(rows, 2, 5000, true) // must degrade, not deadlock
	sortActive.Store(false)
	checkStablePermutation(t, "degraded", rows, 2, got, want)
}

func TestStrategyCounters(t *testing.T) {
	r0, c0 := RadixSorts(), ComparisonSorts()
	rng := rand.New(rand.NewSource(13))
	small := randomBlock(rng, 2, RadixMinRows-1, 0, 100)
	Argsort(small, 2, RadixMinRows-1, true)
	big := randomBlock(rng, 2, RadixMinRows, 0, 100)
	Argsort(big, 2, RadixMinRows, true)
	if got := ComparisonSorts() - c0; got < 1 {
		t.Fatalf("comparison sorts advanced by %d, want >= 1", got)
	}
	if got := RadixSorts() - r0; got < 1 {
		t.Fatalf("radix sorts advanced by %d, want >= 1", got)
	}
}
