// Package sortx is the shared row-sorting kernel of the data plane: an
// arity-agnostic argsort over the n×k row-major []int32 blocks that
// internal/factor and internal/join are built on.  Every consumer that used
// to run a generic comparison argsort — permuted CSR trie builds, the
// factor constructor, the projection/marginalization group-folds, delta
// batch validation — routes through Argsort, which picks the cheapest
// strategy for the input:
//
//   - small blocks run the comparison argsort (the counting passes of a
//     radix sort have fixed per-digit overhead that dominates tiny inputs);
//   - larger blocks pack each row into fixed-width byte keys (one uint64
//     word per two sign-bit-flipped columns, so unsigned word order equals
//     lexicographic row order) and run an LSD radix sort over 8-bit digits
//     with counting passes and ping-pong buffers — stable by construction,
//     and digit positions that are constant across the block (high bytes of
//     small domains) are skipped outright;
//   - very large blocks split into contiguous chunks that radix-sort
//     concurrently and then merge pairwise, riding the same worker split
//     the retired factor.parallelSort used, behind a process-wide gate so a
//     sort inside a pool worker never stacks a second fan-out on the pool.
//
// The chosen strategy is counted process-wide (RadixSorts /
// ComparisonSorts) for the /statsz and /metrics surfaces.
package sortx

import (
	"math"
	"runtime"
	"sort"
	"sync/atomic"
)

// RadixMinRows is the row count below which the comparison argsort is used
// instead of the radix kernel; a var so tests and benchmarks can force
// either path.
var RadixMinRows = 128

// ParallelMinRows is the row count above which a radix sort splits into
// concurrently sorted chunks followed by pairwise merges; a var so tests
// can exercise the parallel path on small inputs.
var ParallelMinRows = 256 << 10

// sortActive admits at most one parallel sort at a time process-wide: a
// sort attempted while another runs (e.g. inside a pool-executor worker,
// where sibling workers already occupy the CPUs) degrades to the
// sequential radix kernel instead of stacking another GOMAXPROCS-wide
// fan-out on top of the pool.
var sortActive atomic.Bool

var (
	radixSorts      atomic.Int64
	comparisonSorts atomic.Int64
)

// RadixSorts returns the process-wide count of Argsort calls served by the
// radix kernel (sequential or chunk-parallel).
func RadixSorts() int64 { return radixSorts.Load() }

// ComparisonSorts returns the process-wide count of Argsort calls served
// by the comparison fallback.
func ComparisonSorts() int64 { return comparisonSorts.Load() }

// Argsort returns the indices of the n rows of the k-column row-major
// block in lexicographic row order.  When stable is set, equal rows keep
// their input order (required wherever duplicates fold in input order);
// the radix paths are stable by construction, so the flag only changes the
// comparison fallback, where the index tie-break would otherwise cost a
// compare per pair.  The block is never mutated.
func Argsort(rows []int32, k, n int, stable bool) []int {
	if n <= 1 || k == 0 {
		return identity(n)
	}
	if n < RadixMinRows || n > math.MaxInt32 {
		comparisonSorts.Add(1)
		return comparisonArgsort(rows, k, n, stable)
	}
	radixSorts.Add(1)
	if n >= ParallelMinRows && runtime.GOMAXPROCS(0) > 1 && sortActive.CompareAndSwap(false, true) {
		defer sortActive.Store(false)
		return parallelArgsort(rows, k, n)
	}
	return radixArgsort(rows, k, n)
}

func identity(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// comparisonArgsort is the pre-radix kernel: sort.Slice over row indices
// with a per-compare column loop, kept as the small-input fast path and as
// the reference the radix paths are differentially tested against.
func comparisonArgsort(rows []int32, k, n int, stable bool) []int {
	order := identity(n)
	sort.Slice(order, func(a, b int) bool {
		ra := rows[order[a]*k : order[a]*k+k]
		rb := rows[order[b]*k : order[b]*k+k]
		for i := range ra {
			if ra[i] != rb[i] {
				return ra[i] < rb[i]
			}
		}
		return stable && order[a] < order[b]
	})
	return order
}

// compareRows lexicographically compares two equal-length rows.
func compareRows(a, b []int32) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}
