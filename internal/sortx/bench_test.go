// Kernel benchmarks: the radix argsort against the comparison argsort it
// replaced, at the 48k-row scale of the permuted trie builds and across
// the arity range the old uint64 fast path did not cover.  `make
// bench-radix` records these (with -benchmem) to BENCH_PR9.json as the
// before/after record.
package sortx

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchBlock(k, n int, dom int32) []int32 {
	rng := rand.New(rand.NewSource(int64(k)*1000 + int64(n)))
	rows := make([]int32, n*k)
	for i := range rows {
		rows[i] = rng.Int31n(dom)
	}
	return rows
}

func BenchmarkRadixArgsort(b *testing.B) {
	for _, k := range []int{1, 2, 3, 4, 5} {
		rows := benchBlock(k, 48000, 3000)
		b.Run(fmt.Sprintf("arity%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				radixArgsort(rows, k, 48000)
			}
		})
	}
}

func BenchmarkComparisonArgsort(b *testing.B) {
	for _, k := range []int{1, 2, 3, 4, 5} {
		rows := benchBlock(k, 48000, 3000)
		b.Run(fmt.Sprintf("arity%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				comparisonArgsort(rows, k, 48000, true)
			}
		})
	}
}
