package pgm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/core"
)

func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*scale
}

func TestValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Chain(rng, 4, 2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Model{NumVars: 2, DomSizes: []int{2, 2}}
	if err := bad.Validate(); err == nil {
		t.Fatal("uncovered variables should fail validation")
	}
}

func TestMarginalMatchesBruteForceOnModels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	models := map[string]*Model{
		"chain":  Chain(rng, 5, 3),
		"grid":   Grid(rng, 2, 3, 2),
		"cycle":  Cycle(rng, 5, 2),
		"tree":   RandomTree(rng, 6, 2),
		"single": Chain(rng, 1, 4),
	}
	for name, m := range models {
		for _, queryVars := range [][]int{nil, {0}, {0, m.NumVars - 1}} {
			if len(queryVars) > m.NumVars {
				continue
			}
			got, err := m.Marginal(queryVars)
			if err != nil {
				t.Fatalf("%s %v: %v", name, queryVars, err)
			}
			want, err := m.MarginalBrute(queryVars)
			if err != nil {
				t.Fatal(err)
			}
			if got.Size() != want.Size() {
				t.Fatalf("%s %v: %d rows vs %d", name, queryVars, got.Size(), want.Size())
			}
			for i, tup := range want.Tuples() {
				gv, ok := got.Value(tup)
				if !ok || !approxEq(gv, want.Values[i]) {
					t.Fatalf("%s %v: marginal(%v) = %v, want %v", name, queryVars, tup, gv, want.Values[i])
				}
			}
		}
	}
}

func TestPartitionAndMAP(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		m := Cycle(rng, 4+trial%3, 2)
		z, err := m.Partition()
		if err != nil {
			t.Fatal(err)
		}
		zb, err := m.MarginalBrute(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(z, zb.Values[0]) {
			t.Fatalf("trial %d: Z = %v, brute %v", trial, z, zb.Values[0])
		}
		mapv, err := m.MAPValue()
		if err != nil {
			t.Fatal(err)
		}
		mapb, err := m.MAPBrute()
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(mapv, mapb) {
			t.Fatalf("trial %d: MAP = %v, brute %v", trial, mapv, mapb)
		}
		if mapv > z+1e-9 {
			t.Fatalf("trial %d: MAP value exceeds partition function", trial)
		}
	}
}

func TestMAPAssignmentRealizesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		m := Grid(rng, 2, 3, 2)
		assignment, val, err := m.MAPAssignment()
		if err != nil {
			t.Fatal(err)
		}
		// Evaluate the product of potentials at the decoded assignment.
		prod := 1.0
		for _, p := range m.Potentials {
			tuple := make([]int, len(p.Vars))
			for i, v := range p.Vars {
				tuple[i] = assignment[v]
			}
			pv, ok := p.Value(tuple)
			if !ok {
				t.Fatalf("trial %d: MAP assignment hits a zero potential", trial)
			}
			prod *= pv
		}
		if !approxEq(prod, val) {
			t.Fatalf("trial %d: decoded assignment has value %v, MAP value %v", trial, prod, val)
		}
	}
}

func TestMarginalQueryVarValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := Chain(rng, 3, 2)
	if _, err := m.Marginal([]int{7}); err == nil {
		t.Fatal("unknown query variable should fail")
	}
	if _, err := m.Marginal([]int{1, 1}); err == nil {
		t.Fatal("duplicate query variable should fail")
	}
}

func TestMarginalConsistency(t *testing.T) {
	// Σ over a marginal equals the partition function.
	rng := rand.New(rand.NewSource(19))
	m := Grid(rng, 2, 2, 3)
	z, err := m.Partition()
	if err != nil {
		t.Fatal(err)
	}
	mu, err := m.Marginal([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range mu.Values {
		sum += v
	}
	if !approxEq(sum, z) {
		t.Fatalf("Σ marginal = %v, Z = %v", sum, z)
	}
}

func BenchmarkMarginalGrid3x4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := Grid(rng, 3, 4, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Marginal([]int{0}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestModelUseEngineAmortizesPlans(t *testing.T) {
	eng := core.NewEngine[float64](core.EngineOptions{Workers: 2})
	defer eng.Close()
	rng := rand.New(rand.NewSource(31))
	m := Cycle(rng, 5, 3).UseEngine(eng)

	// MAPAssignment issues 1 + up to n·d MAP evaluations on conditioned
	// models; conditioning preserves every factor's variable set, so all of
	// them share one query shape and the engine plans exactly once.
	assignment, val, err := m.MAPAssignment()
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.MAPBrute()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(val, want) {
		t.Fatalf("engine-backed MAP = %v, brute force = %v", val, want)
	}
	if len(assignment) != m.NumVars {
		t.Fatalf("assignment has %d entries, want %d", len(assignment), m.NumVars)
	}
	st := eng.Stats()
	if st.PlanCacheMisses != 1 {
		t.Fatalf("conditioned MAP sweep planned %d times, want 1: %+v", st.PlanCacheMisses, st)
	}
	if st.PlanCacheHits < int64(m.NumVars) {
		t.Fatalf("conditioned MAP sweep hit the cache only %d times: %+v", st.PlanCacheHits, st)
	}
	// A marginal adds a second shape (one free variable), no more.
	if _, err := m.Marginal([]int{0}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.PlanCacheMisses != 2 {
		t.Fatalf("marginal should add exactly one plan: %+v", st)
	}
}
