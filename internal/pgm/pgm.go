// Package pgm implements discrete probabilistic graphical models (Example
// A.12) on top of the FAQ engine: marginal and MAP queries (Table 1 rows 5
// and 6) are compiled to sum-product and max-product FAQ instances, planned
// with the fractional-hypertree-width machinery, and solved by InsideOut.
// A brute-force oracle and standard model generators (chains, trees, grids,
// cycles) are included for tests and benchmarks.
package pgm

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// Model is an undirected graphical model (Markov random field): variables
// 0..NumVars-1 with finite domains and non-negative potentials.  The
// unnormalized measure of an assignment is the product of the potentials.
type Model struct {
	NumVars    int
	DomSizes   []int
	Potentials []*factor.Factor[float64]

	engine *core.Engine[float64]
}

// UseEngine routes every inference call of this model through the given
// engine and returns the model.  Inference on a graphical model is the
// archetypal prepare-once-run-many workload — a marginal sweep or the n·d
// conditioned MAP evaluations of MAPAssignment reuse a handful of query
// shapes — so all planning is served from the engine's plan cache and all
// scans run on its persistent pool.  A nil receiver-engine (the default)
// means the shared default engine.
func (m *Model) UseEngine(e *core.Engine[float64]) *Model {
	m.engine = e
	return m
}

func (m *Model) solver() *core.Engine[float64] {
	if m.engine != nil {
		return m.engine
	}
	return core.DefaultEngine[float64]()
}

// solve prepares q on the model's engine (hitting the plan cache for
// repeated shapes) and runs InsideOut on the engine's pool.
func (m *Model) solve(q *core.Query[float64]) (*core.Result[float64], error) {
	prep, err := m.solver().Prepare(q)
	if err != nil {
		return nil, err
	}
	return prep.Run(context.Background())
}

// Validate checks the model's structure.
func (m *Model) Validate() error {
	if len(m.DomSizes) != m.NumVars {
		return fmt.Errorf("pgm: %d domain sizes for %d variables", len(m.DomSizes), m.NumVars)
	}
	covered := make([]bool, m.NumVars)
	for _, p := range m.Potentials {
		for _, v := range p.Vars {
			if v < 0 || v >= m.NumVars {
				return fmt.Errorf("pgm: potential mentions unknown variable %d", v)
			}
			covered[v] = true
		}
	}
	for v, ok := range covered {
		if !ok {
			return fmt.Errorf("pgm: variable %d appears in no potential", v)
		}
	}
	return nil
}

// buildQuery compiles the model into an FAQ query whose expression order
// lists queryVars first (as free variables) followed by the remaining
// variables with the given aggregate.  It returns the query and the mapping
// from model variables to query variables.
func (m *Model) buildQuery(queryVars []int, agg core.Aggregate[float64]) (*core.Query[float64], []int, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	toQuery := make([]int, m.NumVars)
	for i := range toQuery {
		toQuery[i] = -1
	}
	for i, v := range queryVars {
		if v < 0 || v >= m.NumVars {
			return nil, nil, fmt.Errorf("pgm: unknown query variable %d", v)
		}
		if toQuery[v] != -1 {
			return nil, nil, fmt.Errorf("pgm: duplicate query variable %d", v)
		}
		toQuery[v] = i
	}
	next := len(queryVars)
	for v := 0; v < m.NumVars; v++ {
		if toQuery[v] == -1 {
			toQuery[v] = next
			next++
		}
	}
	q := &core.Query[float64]{
		D:        semiring.Float(),
		NVars:    m.NumVars,
		DomSizes: make([]int, m.NumVars),
		NumFree:  len(queryVars),
		Aggs:     make([]core.Aggregate[float64], m.NumVars),
	}
	for v := 0; v < m.NumVars; v++ {
		q.DomSizes[toQuery[v]] = m.DomSizes[v]
		if toQuery[v] < q.NumFree {
			q.Aggs[toQuery[v]] = core.Free[float64]()
		} else {
			q.Aggs[toQuery[v]] = agg
		}
	}
	for _, p := range m.Potentials {
		q.Factors = append(q.Factors, p.Rename(toQuery))
	}
	return q, toQuery, nil
}

// Marginal computes the unnormalized marginal over queryVars:
// μ(x_Q) = Σ_{x rest} Π potentials.  The result's variables are the model
// ids of queryVars.
func (m *Model) Marginal(queryVars []int) (*factor.Factor[float64], error) {
	q, toQuery, err := m.buildQuery(queryVars, core.SemiringAgg(semiring.OpFloatSum()))
	if err != nil {
		return nil, err
	}
	res, err := m.solve(q)
	if err != nil {
		return nil, err
	}
	// Map query variable ids back to model ids.
	back := make([]int, m.NumVars)
	for v, qv := range toQuery {
		back[qv] = v
	}
	return res.Output.Rename(back), nil
}

// Partition returns the partition function Z = Σ_x Π potentials.
func (m *Model) Partition() (float64, error) {
	q, _, err := m.buildQuery(nil, core.SemiringAgg(semiring.OpFloatSum()))
	if err != nil {
		return 0, err
	}
	res, err := m.solve(q)
	if err != nil {
		return 0, err
	}
	return res.Scalar(), nil
}

// MAPValue returns max_x Π potentials, the value of the MAP assignment.
func (m *Model) MAPValue() (float64, error) {
	q, _, err := m.buildQuery(nil, core.SemiringAgg(semiring.OpFloatMax()))
	if err != nil {
		return 0, err
	}
	res, err := m.solve(q)
	if err != nil {
		return 0, err
	}
	return res.Scalar(), nil
}

// MAPAssignment decodes an argmax assignment by iterative conditioning:
// fix each variable in turn to a value preserving the MAP value of the
// conditioned model.  n·d MAP evaluations; exact.
func (m *Model) MAPAssignment() ([]int, float64, error) {
	target, err := m.MAPValue()
	if err != nil {
		return nil, 0, err
	}
	cond := &Model{NumVars: m.NumVars, DomSizes: m.DomSizes, Potentials: m.Potentials, engine: m.engine}
	assignment := make([]int, m.NumVars)
	for v := 0; v < m.NumVars; v++ {
		found := false
		for x := 0; x < m.DomSizes[v] && !found; x++ {
			trial := conditionModel(cond, v, x)
			val, err := trial.MAPValue()
			if err != nil {
				return nil, 0, err
			}
			if val >= target*(1-1e-9) {
				assignment[v] = x
				cond = trial
				found = true
			}
		}
		if !found {
			return nil, 0, fmt.Errorf("pgm: MAP decoding failed at variable %d", v)
		}
	}
	return assignment, target, nil
}

// conditionModel pins variable v to value x by restricting every potential.
// Conditioning preserves every factor's variable set, so the conditioned
// model has the same query shape and its plans come from the cache.
func conditionModel(m *Model, v, x int) *Model {
	out := &Model{NumVars: m.NumVars, DomSizes: m.DomSizes, engine: m.engine}
	for _, p := range m.Potentials {
		if p.VarPos(v) >= 0 {
			out.Potentials = append(out.Potentials, p.Condition(map[int]int{v: x}))
		} else {
			out.Potentials = append(out.Potentials, p)
		}
	}
	return out
}

// MarginalBrute computes the marginal by enumeration (testing oracle).
func (m *Model) MarginalBrute(queryVars []int) (*factor.Factor[float64], error) {
	q, toQuery, err := m.buildQuery(queryVars, core.SemiringAgg(semiring.OpFloatSum()))
	if err != nil {
		return nil, err
	}
	out, err := core.BruteForce(q)
	if err != nil {
		return nil, err
	}
	back := make([]int, m.NumVars)
	for v, qv := range toQuery {
		back[qv] = v
	}
	return out.Rename(back), nil
}

// MAPBrute computes the MAP value by enumeration (testing oracle).
func (m *Model) MAPBrute() (float64, error) {
	q, _, err := m.buildQuery(nil, core.SemiringAgg(semiring.OpFloatMax()))
	if err != nil {
		return 0, err
	}
	return core.BruteForceScalar(q)
}

// ---------------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------------

// randomPotential builds a dense strictly-positive potential over vars.
func randomPotential(rng *rand.Rand, vars []int, domSizes []int) *factor.Factor[float64] {
	return factor.FromFunc(semiring.Float(), vars, domSizes, func([]int) float64 {
		return 0.1 + rng.Float64()
	})
}

// Chain builds a chain model x0 — x1 — ... — x_{n-1}.
func Chain(rng *rand.Rand, n, dom int) *Model {
	m := &Model{NumVars: n, DomSizes: uniformDoms(n, dom)}
	if n == 1 {
		m.Potentials = append(m.Potentials, randomPotential(rng, []int{0}, m.DomSizes))
		return m
	}
	for i := 0; i+1 < n; i++ {
		m.Potentials = append(m.Potentials, randomPotential(rng, []int{i, i + 1}, m.DomSizes))
	}
	return m
}

// Grid builds a rows×cols grid model with pairwise potentials.
func Grid(rng *rand.Rand, rows, cols, dom int) *Model {
	n := rows * cols
	m := &Model{NumVars: n, DomSizes: uniformDoms(n, dom)}
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				m.Potentials = append(m.Potentials, randomPotential(rng, []int{id(r, c), id(r, c+1)}, m.DomSizes))
			}
			if r+1 < rows {
				m.Potentials = append(m.Potentials, randomPotential(rng, []int{id(r, c), id(r+1, c)}, m.DomSizes))
			}
		}
	}
	if n == 1 {
		m.Potentials = append(m.Potentials, randomPotential(rng, []int{0}, m.DomSizes))
	}
	return m
}

// Cycle builds a cycle model; for n = 3 this is the triangle whose
// fractional cover (1.5) beats the integral cover (2) — the fhtw vs htw gap
// of Table 1's Marginal/MAP rows.
func Cycle(rng *rand.Rand, n, dom int) *Model {
	m := &Model{NumVars: n, DomSizes: uniformDoms(n, dom)}
	for i := 0; i < n; i++ {
		m.Potentials = append(m.Potentials, randomPotential(rng, sortedPair(i, (i+1)%n), m.DomSizes))
	}
	return m
}

// RandomTree builds a random tree-structured model.
func RandomTree(rng *rand.Rand, n, dom int) *Model {
	m := &Model{NumVars: n, DomSizes: uniformDoms(n, dom)}
	if n == 1 {
		m.Potentials = append(m.Potentials, randomPotential(rng, []int{0}, m.DomSizes))
		return m
	}
	for i := 1; i < n; i++ {
		parent := rng.Intn(i)
		m.Potentials = append(m.Potentials, randomPotential(rng, sortedPair(parent, i), m.DomSizes))
	}
	return m
}

func uniformDoms(n, dom int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = dom
	}
	return out
}

func sortedPair(a, b int) []int {
	if a < b {
		return []int{a, b}
	}
	return []int{b, a}
}
