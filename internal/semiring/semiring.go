// Package semiring models the algebraic structure underlying FAQ queries.
//
// An FAQ query (Section 1.2 of the paper) fixes one domain D with a
// commutative product ⊗, an additive identity 0 shared by all aggregates, and
// a multiplicative identity 1.  Every bound variable carries an aggregate
// ⊕(i) which either forms a commutative semiring (D, ⊕(i), ⊗) or is ⊗
// itself.  Go's generics cannot express "type with operators", so the
// structure is reified: Domain[V] carries ⊗/0/1 as funcs and Op[V] carries a
// named aggregate.  All engine code is generic over the value type V.
package semiring

import (
	"math"
	"math/big"
)

// Domain describes the shared multiplicative monoid of an FAQ instance:
// the product ⊗ with identity One and the annihilating additive identity
// Zero.  Mul must be commutative and associative; Zero must annihilate
// (Mul(x, Zero) = Zero for all x).
type Domain[V any] struct {
	Name   string
	Zero   V
	One    V
	Mul    func(a, b V) V
	IsZero func(v V) bool
	Equal  func(a, b V) bool
}

// MulIdempotent reports whether v is an idempotent element of ⊗
// (v ⊗ v = v).  Definition 5.2 of the paper uses this to decide whether a
// factor may be "factored out" past a product aggregate without powering.
func (d *Domain[V]) MulIdempotent(v V) bool {
	return d.Equal(d.Mul(v, v), v)
}

// Pow raises v to the k-th power under ⊗ by repeated squaring, performing
// O(log k) multiplications as in Section 5.2.2.  Pow(v, 0) is One.
func (d *Domain[V]) Pow(v V, k int) V {
	if k < 0 {
		panic("semiring: negative exponent")
	}
	acc := d.One
	base := v
	for k > 0 {
		if k&1 == 1 {
			acc = d.Mul(acc, base)
		}
		base = d.Mul(base, base)
		k >>= 1
	}
	return acc
}

// Op is a named commutative, associative aggregate over V.  An Op used as a
// variable aggregate must form a commutative semiring with the domain's ⊗
// and share the domain's Zero as its identity.
type Op[V any] struct {
	Name       string
	Combine    func(a, b V) V
	Idempotent bool // a ⊕ a = a for all a (max, min, or, union, ...)
	// NonSemiring, when non-empty, marks an aggregate that does NOT form a
	// commutative semiring with its usual domain — the string says why and
	// names the lawful alternative.  The engine refuses such aggregates at
	// Validate time: a sparse evaluator reads absent tuples as the domain's
	// Zero, so an aggregate whose identity is not Zero silently computes a
	// different function than Eq. (1).
	NonSemiring string
	// Inverse, when non-nil, is subtraction with respect to ⊕: it returns
	// a ⊕ b⁻¹, so Combine(Inverse(a, b), b) = a.  Only ring aggregates have
	// one (sum over float/int); idempotent aggregates like max, min and or
	// destroy information and leave it nil.  Incremental view maintenance
	// keys on this field: with an inverse, deltas propagate algebraically;
	// without one, affected state must be recomputed.
	Inverse func(a, b V) V
}

// Invertible reports whether the aggregate carries a ⊕-inverse, i.e. forms
// a commutative group rather than just a monoid.  Nil receivers report false.
func (o *Op[V]) Invertible() bool {
	return o != nil && o.Inverse != nil
}

// SameOp reports whether two aggregates are the same named operator.
// Per Definition 6.4/Proposition 6.6, non-identical aggregates never
// commute, so names are the unit of comparison when building expression
// trees.
func SameOp[V any](a, b *Op[V]) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Name == b.Name
}

// ---------------------------------------------------------------------------
// Standard instantiations.
// ---------------------------------------------------------------------------

// Bool returns the Boolean domain ({false,true}, ∨, ∧): the semiring of
// joins, CSP satisfiability and QCQ (Appendix A.1).
func Bool() *Domain[bool] {
	return &Domain[bool]{
		Name:   "bool",
		Zero:   false,
		One:    true,
		Mul:    func(a, b bool) bool { return a && b },
		IsZero: func(v bool) bool { return !v },
		Equal:  func(a, b bool) bool { return a == b },
	}
}

// OpOr is logical disjunction, the additive aggregate of the Boolean semiring.
func OpOr() *Op[bool] {
	return &Op[bool]{Name: "or", Combine: func(a, b bool) bool { return a || b }, Idempotent: true}
}

// Float returns the real domain (R, ·) shared by the sum-product,
// max-product and min-product semirings of PGM inference.
func Float() *Domain[float64] {
	return &Domain[float64]{
		Name:   "float64",
		Zero:   0,
		One:    1,
		Mul:    func(a, b float64) float64 { return a * b },
		IsZero: func(v float64) bool { return v == 0 },
		Equal:  func(a, b float64) bool { return a == b },
	}
}

// OpFloatSum is + over float64 (sum-product semiring: marginals, #CSP).
// It carries an Inverse (subtraction), making (float64, +) a group: the
// hook incremental maintenance uses to retract stale contributions.
func OpFloatSum() *Op[float64] {
	return &Op[float64]{
		Name:    "sum",
		Combine: func(a, b float64) float64 { return a + b },
		Inverse: func(a, b float64) float64 { return a - b },
	}
}

// OpFloatMax is max over non-negative float64 (max-product semiring: MAP).
func OpFloatMax() *Op[float64] {
	return &Op[float64]{Name: "max", Combine: math.Max, Idempotent: true}
}

// OpFloatMin is min over float64 — annotated as NOT a lawful FAQ aggregate
// over the Float domain, and rejected by Query.Validate.  (R≥0, min, ·)
// fails the semiring laws FAQ needs because the additive identity of every
// aggregate must be the domain's shared Zero (Section 1.2), and
// min(x, 0) = 0 ≠ x: the sparse engine (min over supported tuples) and the
// dense semantics of Eq. (1) (min over the whole box, absent tuples reading
// as 0) legitimately disagree — the quirk surfaced by the PR-1 equivalence
// harness.  Lawful min-product is the Tropical domain, where Zero = +∞,
// ⊗ is +, and min(x, +∞) = x; see Tropical and OpTropicalMin.
func OpFloatMin() *Op[float64] {
	return &Op[float64]{Name: "min", Combine: math.Min, Idempotent: true,
		NonSemiring: "min over (float64, ·) has no additive identity: the domain's " +
			"Zero is 0 and min(x, 0) = 0 ≠ x; use the Tropical domain (min, +) instead"}
}

// Int returns the counting domain (Z, ·) used by #CQ and #QCQ where
// D = N (Table 1).
func Int() *Domain[int64] {
	return &Domain[int64]{
		Name:   "int64",
		Zero:   0,
		One:    1,
		Mul:    func(a, b int64) int64 { return a * b },
		IsZero: func(v int64) bool { return v == 0 },
		Equal:  func(a, b int64) bool { return a == b },
	}
}

// OpIntSum is + over int64.  Like OpFloatSum it carries an Inverse; int64
// arithmetic is exact mod 2⁶⁴, so delta propagation is bit-identical to a
// full recompute.
func OpIntSum() *Op[int64] {
	return &Op[int64]{
		Name:    "sum",
		Combine: func(a, b int64) int64 { return a + b },
		Inverse: func(a, b int64) int64 { return a - b },
	}
}

// OpIntMax is max over non-negative int64.
func OpIntMax() *Op[int64] {
	return &Op[int64]{Name: "max", Combine: func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}, Idempotent: true}
}

// Complex returns (C, ·), the domain of the DFT reduction (Table 1, blue).
func Complex() *Domain[complex128] {
	return &Domain[complex128]{
		Name:   "complex128",
		Zero:   0,
		One:    1,
		Mul:    func(a, b complex128) complex128 { return a * b },
		IsZero: func(v complex128) bool { return v == 0 },
		Equal:  func(a, b complex128) bool { return a == b },
	}
}

// OpComplexSum is + over complex128, with the group inverse (subtraction).
func OpComplexSum() *Op[complex128] {
	return &Op[complex128]{
		Name:    "sum",
		Combine: func(a, b complex128) complex128 { return a + b },
		Inverse: func(a, b complex128) complex128 { return a - b },
	}
}

// Rat returns the exact rational domain (Q, ·) used by the weighted #SAT
// elimination of Section 8.3.2, where clause weights become fractions.
// All operations allocate fresh values; shared Zero/One are never mutated.
func Rat() *Domain[*big.Rat] {
	return &Domain[*big.Rat]{
		Name: "rat",
		Zero: new(big.Rat),
		One:  big.NewRat(1, 1),
		Mul: func(a, b *big.Rat) *big.Rat {
			return new(big.Rat).Mul(a, b)
		},
		IsZero: func(v *big.Rat) bool { return v.Sign() == 0 },
		Equal:  func(a, b *big.Rat) bool { return a.Cmp(b) == 0 },
	}
}

// OpRatSum is + over *big.Rat, with the group inverse (exact subtraction).
func OpRatSum() *Op[*big.Rat] {
	return &Op[*big.Rat]{
		Name: "sum",
		Combine: func(a, b *big.Rat) *big.Rat {
			return new(big.Rat).Add(a, b)
		},
		Inverse: func(a, b *big.Rat) *big.Rat {
			return new(big.Rat).Sub(a, b)
		},
	}
}

// SetUniverse is the number of elements in the small-set semiring universe.
const SetUniverse = 64

// Set returns the set semiring (2^U, ∪, ∩) over a 64-element universe
// encoded as a bitmask: Zero = ∅, One = U.  Yannakakis' algorithm is
// variable elimination over this semiring (Section 3.1).
func Set() *Domain[uint64] {
	return &Domain[uint64]{
		Name:   "set64",
		Zero:   0,
		One:    ^uint64(0),
		Mul:    func(a, b uint64) uint64 { return a & b },
		IsZero: func(v uint64) bool { return v == 0 },
		Equal:  func(a, b uint64) bool { return a == b },
	}
}

// OpUnion is set union over the 64-element universe.
func OpUnion() *Op[uint64] {
	return &Op[uint64]{Name: "union", Combine: func(a, b uint64) uint64 { return a | b }, Idempotent: true}
}

// Tropical returns the min-plus semiring (R ∪ {+∞}, min, +) with
// Zero = +∞ and One = 0, used for shortest-path style dynamic programs.
// Note the product here is addition: this is a different ⊗ from Float's.
func Tropical() *Domain[float64] {
	return &Domain[float64]{
		Name:   "tropical",
		Zero:   math.Inf(1),
		One:    0,
		Mul:    func(a, b float64) float64 { return a + b },
		IsZero: func(v float64) bool { return math.IsInf(v, 1) },
		Equal:  func(a, b float64) bool { return a == b || (math.IsInf(a, 1) && math.IsInf(b, 1)) },
	}
}

// OpTropicalMin is min, the additive aggregate of the tropical semiring.
func OpTropicalMin() *Op[float64] {
	return &Op[float64]{Name: "min", Combine: math.Min, Idempotent: true}
}

// OpZeroOneOr builds the 01-OR aggregate of Definition 5.3 for an arbitrary
// domain: a ⊕ b is Zero when both arguments are Zero and One otherwise.
// (01, ⊗) is a semiring on {0, 1}; InsideOut uses it to eliminate free
// variables and recover the output, Yannakakis-style.
func OpZeroOneOr[V any](d *Domain[V]) *Op[V] {
	return &Op[V]{
		Name: "01or",
		Combine: func(a, b V) V {
			if d.IsZero(a) && d.IsZero(b) {
				return d.Zero
			}
			return d.One
		},
		Idempotent: true,
	}
}
