package semiring

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

// axiomChecker verifies the commutative-semiring axioms of footnote 1 in the
// paper over a supplied sample of values:
//
//  1. (D, ⊕) commutative monoid with identity 0,
//  2. (D, ⊗) commutative monoid with identity 1,
//  3. ⊗ distributes over ⊕,
//  4. 0 annihilates under ⊗.
func axiomChecker[V any](t *testing.T, d *Domain[V], op *Op[V], sample []V) {
	t.Helper()
	eq := d.Equal
	for _, a := range sample {
		if !eq(op.Combine(a, d.Zero), a) {
			t.Fatalf("%s/%s: a ⊕ 0 ≠ a for %v", d.Name, op.Name, a)
		}
		if !eq(d.Mul(a, d.One), a) {
			t.Fatalf("%s: a ⊗ 1 ≠ a for %v", d.Name, a)
		}
		if !eq(d.Mul(a, d.Zero), d.Zero) {
			t.Fatalf("%s: a ⊗ 0 ≠ 0 for %v", d.Name, a)
		}
		if op.Idempotent && !eq(op.Combine(a, a), a) {
			t.Fatalf("%s/%s: flagged idempotent but a ⊕ a ≠ a for %v", d.Name, op.Name, a)
		}
		for _, b := range sample {
			if !eq(op.Combine(a, b), op.Combine(b, a)) {
				t.Fatalf("%s/%s: ⊕ not commutative on (%v, %v)", d.Name, op.Name, a, b)
			}
			if !eq(d.Mul(a, b), d.Mul(b, a)) {
				t.Fatalf("%s: ⊗ not commutative on (%v, %v)", d.Name, a, b)
			}
			for _, c := range sample {
				if !eq(op.Combine(op.Combine(a, b), c), op.Combine(a, op.Combine(b, c))) {
					t.Fatalf("%s/%s: ⊕ not associative on (%v, %v, %v)", d.Name, op.Name, a, b, c)
				}
				if !eq(d.Mul(d.Mul(a, b), c), d.Mul(a, d.Mul(b, c))) {
					t.Fatalf("%s: ⊗ not associative on (%v, %v, %v)", d.Name, a, b, c)
				}
				if !eq(d.Mul(a, op.Combine(b, c)), op.Combine(d.Mul(a, b), d.Mul(a, c))) {
					t.Fatalf("%s/%s: distributivity fails on (%v, %v, %v)", d.Name, op.Name, a, b, c)
				}
			}
		}
	}
}

func TestBoolSemiring(t *testing.T) {
	axiomChecker(t, Bool(), OpOr(), []bool{false, true})
}

func TestFloatSumProd(t *testing.T) {
	// Small integers so float arithmetic is exact and axioms hold exactly.
	sample := []float64{0, 1, 2, 3, 5}
	axiomChecker(t, Float(), OpFloatSum(), sample)
}

func TestFloatMaxProd(t *testing.T) {
	sample := []float64{0, 0.5, 1, 2, 4}
	axiomChecker(t, Float(), OpFloatMax(), sample)
}

func TestFloatMinProdOverNonNegatives(t *testing.T) {
	sample := []float64{0, 0.5, 1, 2, 4}
	d := Float()
	op := OpFloatMin()
	// min-product is a semiring over R+ except that min's identity is +∞,
	// not 0; check only distributivity and annihilation here.
	for _, a := range sample {
		for _, b := range sample {
			for _, c := range sample {
				if d.Mul(a, op.Combine(b, c)) != op.Combine(d.Mul(a, b), d.Mul(a, c)) {
					t.Fatalf("min-product distributivity fails on (%v, %v, %v)", a, b, c)
				}
			}
		}
	}
}

func TestFloatMinAnnotatedNonSemiring(t *testing.T) {
	// Regression for the lawfulness quirk surfaced by the PR-1 equivalence
	// harness: min over (float64, ·, 0) violates the identity law —
	// min(x, Zero) = 0 ≠ x — so the op must carry a NonSemiring annotation
	// routing users to the Tropical domain, where min(x, Zero=+∞) = x.
	d := Float()
	op := OpFloatMin()
	if op.NonSemiring == "" {
		t.Fatal("OpFloatMin carries no NonSemiring annotation")
	}
	if x := 2.5; op.Combine(x, d.Zero) == x {
		t.Fatal("min(x, 0) = x would make min lawful over Float; annotation is stale")
	}
	trop := Tropical()
	tmin := OpTropicalMin()
	if tmin.NonSemiring != "" {
		t.Fatalf("OpTropicalMin wrongly annotated: %s", tmin.NonSemiring)
	}
	if x := 2.5; tmin.Combine(x, trop.Zero) != x {
		t.Fatal("tropical min violates the identity law")
	}
}

func TestIntSemirings(t *testing.T) {
	sample := []int64{0, 1, 2, 3, 7}
	axiomChecker(t, Int(), OpIntSum(), sample)
	axiomChecker(t, Int(), OpIntMax(), sample)
}

func TestComplexSemiring(t *testing.T) {
	sample := []complex128{0, 1, 1i, 2 + 3i}
	axiomChecker(t, Complex(), OpComplexSum(), sample)
}

func TestRatSemiring(t *testing.T) {
	sample := []*big.Rat{new(big.Rat), big.NewRat(1, 1), big.NewRat(1, 2), big.NewRat(-3, 7)}
	axiomChecker(t, Rat(), OpRatSum(), sample)
}

func TestRatOpsDoNotMutate(t *testing.T) {
	d := Rat()
	a := big.NewRat(2, 3)
	b := big.NewRat(3, 2)
	d.Mul(a, b)
	OpRatSum().Combine(a, b)
	if a.RatString() != "2/3" || b.RatString() != "3/2" {
		t.Fatal("rational operations mutated their arguments")
	}
	d.Mul(d.Zero, big.NewRat(5, 1))
	if d.Zero.Sign() != 0 {
		t.Fatal("shared Zero was mutated")
	}
}

func TestSetSemiring(t *testing.T) {
	sample := []uint64{0, 1, 0b1010, ^uint64(0), 1 << 63}
	axiomChecker(t, Set(), OpUnion(), sample)
}

func TestTropicalSemiring(t *testing.T) {
	inf := math.Inf(1)
	sample := []float64{inf, 0, 1, 2.5, 10}
	axiomChecker(t, Tropical(), OpTropicalMin(), sample)
}

func TestZeroOneOr(t *testing.T) {
	d := Float()
	op := OpZeroOneOr(d)
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0}, {0, 3, 1}, {2, 0, 1}, {5, 7, 1},
	}
	for _, c := range cases {
		if got := op.Combine(c.a, c.b); got != c.want {
			t.Fatalf("01or(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// (01, ⊗) must itself satisfy the semiring axioms on {0, 1}.
	axiomChecker(t, d, op, []float64{0, 1})
}

func TestPow(t *testing.T) {
	d := Float()
	if got := d.Pow(2, 10); got != 1024 {
		t.Fatalf("2^10 = %v", got)
	}
	if got := d.Pow(7, 0); got != 1 {
		t.Fatalf("7^0 = %v", got)
	}
	if got := d.Pow(0, 5); got != 0 {
		t.Fatalf("0^5 = %v", got)
	}
	b := Bool()
	if got := b.Pow(true, 17); got != true {
		t.Fatalf("true^17 = %v", got)
	}
}

func TestPowNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pow with negative exponent should panic")
		}
	}()
	Float().Pow(2, -1)
}

// Property: Pow agrees with the naive iterated product.
func TestQuickPowMatchesNaive(t *testing.T) {
	d := Int()
	f := func(base int8, exp uint8) bool {
		b := int64(base) % 3 // keep products within int64
		k := int(exp) % 20
		want := int64(1)
		for i := 0; i < k; i++ {
			want *= b
		}
		return d.Pow(b, k) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulIdempotent(t *testing.T) {
	d := Float()
	if !d.MulIdempotent(0) || !d.MulIdempotent(1) {
		t.Fatal("0 and 1 are ⊗-idempotent in (R, ·)")
	}
	if d.MulIdempotent(2) {
		t.Fatal("2 is not ⊗-idempotent in (R, ·)")
	}
	s := Set()
	if !s.MulIdempotent(0b1011) {
		t.Fatal("every set is ∩-idempotent")
	}
}

func TestSameOp(t *testing.T) {
	if !SameOp(OpFloatSum(), OpFloatSum()) {
		t.Fatal("two sum ops should compare equal by name")
	}
	if SameOp(OpFloatSum(), OpFloatMax()) {
		t.Fatal("sum and max are different aggregates")
	}
	if !SameOp[float64](nil, nil) {
		t.Fatal("nil (product) aggregates are the same")
	}
	if SameOp(nil, OpFloatSum()) {
		t.Fatal("nil vs sum should differ")
	}
}

// Proposition 6.7: for non-commuting aggregates there exists a 2×2 witness
// on which the order of aggregation matters.  Verify sum/max exhibit one.
func TestSumMaxDoNotCommute(t *testing.T) {
	// φ(x, y) over {0,1}²: Σ_x max_y vs max_y Σ_x.
	phi := [2][2]float64{{1, 0}, {0, 1}}
	sumThenMax := math.Max(phi[0][0]+phi[1][0], phi[0][1]+phi[1][1])
	maxThenSum := math.Max(phi[0][0], phi[0][1]) + math.Max(phi[1][0], phi[1][1])
	if sumThenMax == maxThenSum {
		t.Fatal("expected witness for non-commutativity of sum and max")
	}
}
