package matrixops

import (
	"context"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/core"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float64(rng.Intn(7)) - 3
	}
	return m
}

func matricesEqual(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMulBasics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 2)
	for i := range a.Data {
		a.Data[i] = float64(i + 1)
	}
	for i := range b.Data {
		b.Data[i] = float64(i + 1)
	}
	var ops int64
	c := a.Mul(b, &ops)
	// [1 2 3; 4 5 6] × [1 2; 3 4; 5 6] = [22 28; 49 64]
	want := []float64{22, 28, 49, 64}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
	if ops != 2*3*2 {
		t.Fatalf("ops = %d, want 12", ops)
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch should panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 2), nil)
}

func TestChainDPOptimalCost(t *testing.T) {
	// CLRS example shape: (10×100)(100×5)(5×50) — optimal 7500 multiplies.
	rng := rand.New(rand.NewSource(1))
	ms := []*Matrix{
		randomMatrix(rng, 10, 100),
		randomMatrix(rng, 100, 5),
		randomMatrix(rng, 5, 50),
	}
	_, cost, ops, err := ChainDP(ms)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 7500 {
		t.Fatalf("DP cost = %d, want 7500", cost)
	}
	if ops != cost {
		t.Fatalf("actual multiplies %d != DP cost %d", ops, cost)
	}
}

func TestChainDPDimensionMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ms := []*Matrix{randomMatrix(rng, 2, 3), randomMatrix(rng, 4, 2)}
	if _, _, _, err := ChainDP(ms); err == nil {
		t.Fatal("mismatched chain should fail")
	}
}

func TestChainFAQMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(4)
		dims := make([]int, n+1)
		for i := range dims {
			dims[i] = 1 + rng.Intn(6)
		}
		ms := make([]*Matrix, n)
		for i := range ms {
			ms[i] = randomMatrix(rng, dims[i], dims[i+1])
		}
		want, _, _, err := ChainDP(ms)
		if err != nil {
			t.Fatal(err)
		}
		got, plan, err := ChainFAQ(ms)
		if err != nil {
			t.Fatal(err)
		}
		if plan == nil || len(plan.Order) != n+1 {
			t.Fatalf("trial %d: bogus plan", trial)
		}
		if !matricesEqual(got, want, 1e-9) {
			t.Fatalf("trial %d: FAQ product differs from DP product", trial)
		}
	}
}

func TestChainFAQSingleMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(rng, 3, 4)
	got, _, err := ChainFAQ([]*Matrix{m})
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(got, m, 0) {
		t.Fatal("single-matrix chain should be the identity operation")
	}
}

func TestNaiveDFTKnownValues(t *testing.T) {
	// DFT of [1, 0, 0, 0] is all ones; DFT of [0,1,0,0] is powers of ω.
	out := NaiveDFT([]complex128{1, 0, 0, 0})
	for i, v := range out {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("out[%d] = %v, want 1", i, v)
		}
	}
	out = NaiveDFT([]complex128{0, 1, 0, 0})
	w := cmplx.Exp(complex(0, -2*math.Pi/4))
	for i, v := range out {
		want := cmplx.Pow(w, complex(float64(i), 0))
		if cmplx.Abs(v-want) > 1e-12 {
			t.Fatalf("out[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestFFTViaFAQMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct{ p, m int }{{2, 1}, {2, 3}, {2, 5}, {3, 2}, {3, 3}, {5, 2}}
	for _, c := range cases {
		n := 1
		for i := 0; i < c.m; i++ {
			n *= c.p
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		got, err := FFTViaFAQ(b, c.p, c.m)
		if err != nil {
			t.Fatal(err)
		}
		want := NaiveDFT(b)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-8*float64(n) {
				t.Fatalf("p=%d m=%d: F[%d] = %v, want %v", c.p, c.m, i, got[i], want[i])
			}
		}
	}
}

func TestFFTViaFAQLengthValidation(t *testing.T) {
	if _, err := FFTViaFAQ(make([]complex128, 5), 2, 2); err == nil {
		t.Fatal("wrong length should fail")
	}
}

func TestPreparedFFTTransformsManySignals(t *testing.T) {
	eng := core.NewEngine[complex128](core.EngineOptions{Workers: 2})
	defer eng.Close()
	fft, err := NewFFT(eng, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if fft.Size() != 64 {
		t.Fatalf("size = %d, want 64", fft.Size())
	}
	rng := rand.New(rand.NewSource(9))
	const signals = 4
	for s := 0; s < signals; s++ {
		b := make([]complex128, fft.Size())
		for i := range b {
			b[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		got, err := fft.Transform(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		want := NaiveDFT(b)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-8*float64(fft.Size()) {
				t.Fatalf("signal %d: F[%d] = %v, want %v", s, i, got[i], want[i])
			}
		}
	}
	// One prepare, many transforms: the amortization invariant.
	if st := eng.Stats(); st.Prepared != 1 || st.Runs != signals {
		t.Fatalf("stats after %d transforms: %+v", signals, st)
	}
	if _, err := fft.Transform(context.Background(), make([]complex128, 3)); err == nil {
		t.Fatal("wrong length should fail")
	}
}

func TestNewFFTRejectsBadShape(t *testing.T) {
	if _, err := NewFFT(nil, 1, 3); err == nil {
		t.Fatal("p=1 should fail")
	}
	if _, err := NewFFT(nil, 2, 0); err == nil {
		t.Fatal("m=0 should fail")
	}
}

func BenchmarkFFTViaFAQ1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFTViaFAQ(x, 2, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveDFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NaiveDFT(x)
	}
}
