// Package matrixops implements the matrix-operation rows of Table 1:
// Matrix Chain Multiplication as an FAQ over the path hypergraph (Example
// 1.1) against the textbook dynamic-programming parenthesization [CLRS],
// and the Discrete Fourier Transform over Z_{p^m} as an FAQ whose variable
// elimination is exactly the Cooley–Tukey FFT (the Aji–McEliece view that
// the paper re-derives with InsideOut).
package matrixops

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// Matrix is a dense rows×cols matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // row-major
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns m[i][j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i][j].
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Mul returns m·n, counting scalar multiplications into ops if non-nil.
func (m *Matrix) Mul(n *Matrix, ops *int64) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("matrixops: %dx%d times %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n.Cols; j++ {
				out.Data[i*n.Cols+j] += a * n.At(k, j)
			}
		}
	}
	if ops != nil {
		*ops += int64(m.Rows) * int64(m.Cols) * int64(n.Cols)
	}
	return out
}

// ---------------------------------------------------------------------------
// Matrix Chain Multiplication.
// ---------------------------------------------------------------------------

// ChainDP computes the product A_1···A_n using the optimal parenthesization
// found by the classic O(n³) dynamic program, returning the product, the
// optimal scalar-multiplication cost predicted by the DP, and the actual
// multiplications performed.
func ChainDP(ms []*Matrix) (*Matrix, int64, int64, error) {
	n := len(ms)
	if n == 0 {
		return nil, 0, 0, fmt.Errorf("matrixops: empty chain")
	}
	p := make([]int64, n+1)
	p[0] = int64(ms[0].Rows)
	for i, m := range ms {
		if int64(m.Rows) != p[i] {
			return nil, 0, 0, fmt.Errorf("matrixops: dimension mismatch at matrix %d", i)
		}
		p[i+1] = int64(m.Cols)
	}
	cost := make([][]int64, n)
	split := make([][]int, n)
	for i := range cost {
		cost[i] = make([]int64, n)
		split[i] = make([]int, n)
	}
	for length := 2; length <= n; length++ {
		for i := 0; i+length-1 < n; i++ {
			j := i + length - 1
			cost[i][j] = math.MaxInt64
			for k := i; k < j; k++ {
				c := cost[i][k] + cost[k+1][j] + p[i]*p[k+1]*p[j+1]
				if c < cost[i][j] {
					cost[i][j] = c
					split[i][j] = k
				}
			}
		}
	}
	var ops int64
	var build func(i, j int) *Matrix
	build = func(i, j int) *Matrix {
		if i == j {
			return ms[i]
		}
		k := split[i][j]
		return build(i, k).Mul(build(k+1, j), &ops)
	}
	out := build(0, n-1)
	return out, cost[0][n-1], ops, nil
}

// ChainFAQ computes the product A_1···A_n by compiling Example 1.1's FAQ —
// variables X_1..X_{n+1} with Dom(X_i) = [p_i], factors ψ_{i,i+1} = A_i,
// free variables X_1 and X_{n+1} — and running InsideOut with the planner's
// ordering.  The planner's exact DP over the path hypergraph plays the role
// of the parenthesization DP.
func ChainFAQ(ms []*Matrix) (*Matrix, *core.Plan, error) {
	n := len(ms)
	if n == 0 {
		return nil, nil, fmt.Errorf("matrixops: empty chain")
	}
	if n == 1 {
		return ms[0], &core.Plan{Method: "trivial"}, nil
	}
	d := semiring.Float()
	// Query variables: 0 = X_1, 1 = X_{n+1} (free), then the inner
	// X_2..X_n as variables 2..n in expression order.
	nv := n + 1
	qvar := func(chainIdx int) int { // chain position 0..n -> query var
		switch chainIdx {
		case 0:
			return 0
		case n:
			return 1
		default:
			return chainIdx + 1
		}
	}
	q := &core.Query[float64]{
		D:        d,
		NVars:    nv,
		DomSizes: make([]int, nv),
		NumFree:  2,
		Aggs:     make([]core.Aggregate[float64], nv),
	}
	q.Aggs[0] = core.Free[float64]()
	q.Aggs[1] = core.Free[float64]()
	for i := 2; i < nv; i++ {
		q.Aggs[i] = core.SemiringAgg(semiring.OpFloatSum())
	}
	q.DomSizes[0] = ms[0].Rows
	q.DomSizes[1] = ms[n-1].Cols
	for i := 1; i < n; i++ {
		q.DomSizes[qvar(i)] = ms[i].Rows
	}
	for i, m := range ms {
		u, v := qvar(i), qvar(i+1)
		f := factor.FromFunc(d, core.SortedCopy([]int{u, v}), q.DomSizes, func(t []int) float64 {
			// t is aligned with the sorted variable pair.
			if u < v {
				return m.At(t[0], t[1])
			}
			return m.At(t[1], t[0])
		})
		q.Factors = append(q.Factors, f)
	}
	prep, err := core.DefaultEngine[float64]().Prepare(q)
	if err != nil {
		return nil, nil, err
	}
	res, err := prep.Run(context.Background())
	if err != nil {
		return nil, nil, err
	}
	plan := prep.Plan()
	out := NewMatrix(ms[0].Rows, ms[n-1].Cols)
	for r := 0; r < res.Output.Size(); r++ {
		row := res.Output.Row(r)
		out.Set(int(row[0]), int(row[1]), res.Output.Values[r])
	}
	return out, plan, nil
}

// ---------------------------------------------------------------------------
// DFT over Z_{p^m}.
// ---------------------------------------------------------------------------

// NaiveDFT computes F(t) = Σ_y b_y ω^{t·y} with ω = e^{-2πi/N}, N = len(b),
// by the O(N²) double loop.
func NaiveDFT(b []complex128) []complex128 {
	n := len(b)
	out := make([]complex128, n)
	for t := 0; t < n; t++ {
		var acc complex128
		for y := 0; y < n; y++ {
			angle := -2 * math.Pi * float64(t) * float64(y) / float64(n)
			acc += b[y] * cmplx.Exp(complex(0, angle))
		}
		out[t] = acc
	}
	return out
}

// FFTViaFAQ computes the DFT of b (length p^m) as the FAQ of Table 1's DFT
// row: digits x_0..x_{m-1} of the output index are free variables, digits
// y_0..y_{m-1} of the input index are Σ-aggregated, the vector b is one
// factor over all y-digits, and one twiddle factor ψ_{jk}(x_j, y_k) =
// ω^{x_j·y_k·p^{j+k}} exists for every j+k < m.  Eliminating y_{m-1}, ...,
// y_0 along the expression order performs O(p·N·m) = O(N log N) work: this
// is the Cooley–Tukey FFT recovered by InsideOut.
func FFTViaFAQ(b []complex128, p, m int) ([]complex128, error) {
	n := fftSize(p, m)
	if len(b) != n {
		return nil, fmt.Errorf("matrixops: input length %d, want p^m = %d", len(b), n)
	}
	q := fftQuery(b, p, m, n)
	// The expression order eliminates y_{m-1} first — the FFT recursion.
	prep, err := core.DefaultEngine[complex128]().PrepareOrder(q, q.Shape().ExpressionOrder(), core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	res, err := prep.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return fftDecode(res, p, m, n), nil
}

func fftSize(p, m int) int {
	n := 1
	for i := 0; i < m; i++ {
		n *= p
	}
	return n
}

// fftQuery builds the DFT FAQ instance for a signal b of length n = p^m.
// Factor 0 is the vector factor over the y-digits; the twiddle factors
// after it depend only on (p, m), so a prepared transform swaps factor 0
// and keeps the rest.
func fftQuery(b []complex128, p, m, n int) *core.Query[complex128] {
	d := semiring.Complex()
	nv := 2 * m // x_0..x_{m-1} free, then y_0..y_{m-1}
	q := &core.Query[complex128]{
		D:        d,
		NVars:    nv,
		DomSizes: make([]int, nv),
		NumFree:  m,
		Aggs:     make([]core.Aggregate[complex128], nv),
	}
	for i := 0; i < nv; i++ {
		q.DomSizes[i] = p
		if i < m {
			q.Aggs[i] = core.Free[complex128]()
		} else {
			q.Aggs[i] = core.SemiringAgg(semiring.OpComplexSum())
		}
	}
	q.Factors = append(q.Factors, fftVectorFactor(b, p, m, q.DomSizes))
	// Twiddle factors ψ_{jk} for j+k < m.
	for j := 0; j < m; j++ {
		for k := 0; j+k < m; k++ {
			pj := 1
			for i := 0; i < j+k; i++ {
				pj *= p
			}
			scale := -2 * math.Pi * float64(pj) / float64(n)
			vars := []int{j, m + k}
			q.Factors = append(q.Factors, factor.FromFunc(d, vars, q.DomSizes, func(t []int) complex128 {
				return cmplx.Exp(complex(0, scale*float64(t[0])*float64(t[1])))
			}))
		}
	}
	return q
}

// fftVectorFactor lists the signal over the y-digits (little-endian:
// y = Σ y_k p^k).
func fftVectorFactor(b []complex128, p, m int, domSizes []int) *factor.Factor[complex128] {
	yVars := make([]int, m)
	for k := 0; k < m; k++ {
		yVars[k] = m + k
	}
	return factor.FromFunc(semiring.Complex(), yVars, domSizes, func(t []int) complex128 {
		idx := 0
		for k := m - 1; k >= 0; k-- {
			idx = idx*p + t[k]
		}
		return b[idx]
	})
}

func fftDecode(res *core.Result[complex128], p, m, n int) []complex128 {
	out := make([]complex128, n)
	for r := 0; r < res.Output.Size(); r++ {
		tup := res.Output.Row(r)
		idx := 0
		for j := m - 1; j >= 0; j-- {
			idx = idx*p + int(tup[j])
		}
		out[idx] = res.Output.Values[r]
	}
	return out
}

// FFT is a prepared DFT of fixed size p^m: the FAQ instance is planned and
// bound to an engine once (with the expression order, whose elimination of
// y_{m-1}, ..., y_0 is the Cooley–Tukey recursion), and each Transform
// swaps in a fresh signal via RunWithFactors — the twiddle factors and the
// plan are reused across calls.  This is the repeated-transform workload of
// a streaming DSP loop expressed as a prepared FAQ.
type FFT struct {
	p, m, n int
	prep    *core.PreparedQuery[complex128]
	rest    []*factor.Factor[complex128] // twiddles, shared across transforms
}

// NewFFT prepares a size-p^m DFT on the engine (nil means the default
// engine).
func NewFFT(e *core.Engine[complex128], p, m int) (*FFT, error) {
	if p < 2 || m < 1 {
		return nil, fmt.Errorf("matrixops: bad DFT shape p=%d, m=%d", p, m)
	}
	if e == nil {
		e = core.DefaultEngine[complex128]()
	}
	n := fftSize(p, m)
	q := fftQuery(make([]complex128, n), p, m, n) // placeholder signal
	prep, err := e.PrepareOrder(q, q.Shape().ExpressionOrder(), core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &FFT{p: p, m: m, n: n, prep: prep, rest: q.Factors[1:]}, nil
}

// Size returns the transform length p^m.
func (f *FFT) Size() int { return f.n }

// Transform computes the DFT of b on the prepared plan.
func (f *FFT) Transform(ctx context.Context, b []complex128) ([]complex128, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("matrixops: input length %d, want p^m = %d", len(b), f.n)
	}
	factors := make([]*factor.Factor[complex128], 0, len(f.rest)+1)
	factors = append(factors, fftVectorFactor(b, f.p, f.m, f.prep.Query().DomSizes))
	factors = append(factors, f.rest...)
	res, err := f.prep.RunWithFactors(ctx, factors)
	if err != nil {
		return nil, err
	}
	return fftDecode(res, f.p, f.m, f.n), nil
}
