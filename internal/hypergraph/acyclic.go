package hypergraph

import (
	"github.com/faqdb/faq/internal/bitset"
)

// GYO runs the Graham–Yu–Özsoyoğlu reduction: repeatedly remove vertices
// occurring in exactly one edge and edges contained in other edges.  It
// returns whether the hypergraph is α-acyclic (Definition 4.4) together with
// a join forest: parent[i] is the index of the edge that absorbed edge i, or
// -1 for roots.  The forest is a valid join tree when the hypergraph is
// α-acyclic and connected.
func (h *Hypergraph) GYO() (acyclic bool, parent []int) {
	edges := make([]bitset.Set, len(h.Edges))
	for i, e := range h.Edges {
		edges[i] = e.Clone()
	}
	alive := make([]bool, len(edges))
	for i := range alive {
		alive[i] = true
	}
	parent = make([]int, len(edges))
	for i := range parent {
		parent[i] = -1
	}

	for changed := true; changed; {
		changed = false
		// Remove vertices occurring in exactly one live edge.
		count := make([]int, h.N)
		last := make([]int, h.N)
		for i, e := range edges {
			if !alive[i] {
				continue
			}
			e.ForEach(func(v int) {
				count[v]++
				last[v] = i
			})
		}
		for v := 0; v < h.N; v++ {
			if count[v] == 1 {
				edges[last[v]].Remove(v)
				changed = true
			}
		}
		// Remove edges contained in another live edge (keeping the container).
		for i := range edges {
			if !alive[i] {
				continue
			}
			for j := range edges {
				if i == j || !alive[j] {
					continue
				}
				if edges[i].SubsetOf(edges[j]) {
					// Tie-break equal edges by index so only one dies.
					if edges[i].Equal(edges[j]) && i < j {
						continue
					}
					alive[i] = false
					parent[i] = j
					changed = true
					break
				}
			}
		}
	}

	liveCount := 0
	for i, e := range edges {
		if alive[i] && !e.IsEmpty() {
			liveCount++
		}
	}
	return liveCount == 0, parent
}

// IsAlphaAcyclic reports whether h is α-acyclic.
func (h *Hypergraph) IsAlphaAcyclic() bool {
	ok, _ := h.GYO()
	return ok
}

// IsBetaAcyclic reports whether h is β-acyclic (Definition 4.5): every
// sub-hypergraph formed by a subset of its edges is α-acyclic.  It is
// decided in polynomial time through nest-point elimination (Proposition
// 4.10): a nest point is a vertex whose incident edges form a chain under
// inclusion; h is β-acyclic iff repeatedly deleting nest points (removing
// the vertex from every edge) empties the vertex set.
func (h *Hypergraph) IsBetaAcyclic() bool {
	_, ok := h.NestedEliminationOrder()
	return ok
}

// NestedEliminationOrder returns a vertex ordering σ = (v_1, ..., v_n) as in
// Proposition 4.10 — eliminating from v_n down to v_1, the incident edges of
// the eliminated vertex always form an inclusion chain — and whether such an
// order (equivalently, β-acyclicity) exists.  When ok is false the returned
// prefix still lists the vertices in a valid order with the stuck vertices
// in arbitrary order at the front.
func (h *Hypergraph) NestedEliminationOrder() (order []int, ok bool) {
	edges := make([]bitset.Set, len(h.Edges))
	for i, e := range h.Edges {
		edges[i] = e.Clone()
	}
	remaining := h.Vertices()
	order = make([]int, h.N)
	pos := h.N - 1

	for !remaining.IsEmpty() {
		v := findNestPoint(edges, remaining)
		if v < 0 {
			// Not β-acyclic: emit the leftovers in index order.
			remaining.ForEach(func(u int) {
				order[pos] = u
				pos--
			})
			return order, false
		}
		order[pos] = v
		pos--
		remaining.Remove(v)
		for i := range edges {
			edges[i].Remove(v)
		}
	}
	return order, true
}

// findNestPoint returns a vertex of remaining whose incident edges form an
// inclusion chain, or -1 if none exists.
func findNestPoint(edges []bitset.Set, remaining bitset.Set) int {
	result := -1
	remaining.ForEach(func(v int) {
		if result >= 0 {
			return
		}
		var incident []bitset.Set
		for _, e := range edges {
			if e.Contains(v) {
				incident = append(incident, e)
			}
		}
		if isChain(incident) {
			result = v
		}
	})
	return result
}

// isChain reports whether the sets are totally ordered by inclusion.
// It sorts by size with a selection pass and verifies consecutive inclusion.
func isChain(sets []bitset.Set) bool {
	for i := range sets {
		min := i
		for j := i + 1; j < len(sets); j++ {
			if sets[j].Len() < sets[min].Len() {
				min = j
			}
		}
		sets[i], sets[min] = sets[min], sets[i]
	}
	for i := 1; i < len(sets); i++ {
		if !sets[i-1].SubsetOf(sets[i]) {
			return false
		}
	}
	return true
}
