package hypergraph

import "math/rand"

// Builders for the query families used throughout the paper's examples and
// the benchmark harness.

// Path returns the path query P_n: edges {i, i+1} for 0 ≤ i < n-1.
// This is the hypergraph of Matrix Chain Multiplication (Example 1.1).
func Path(n int) *Hypergraph {
	h := New(n)
	for i := 0; i+1 < n; i++ {
		h.AddEdge(i, i+1)
	}
	return h
}

// Cycle returns the cycle query C_n; for n = 3 this is the triangle query
// with ρ* = 3/2 (the canonical AGM example).
func Cycle(n int) *Hypergraph {
	h := New(n)
	for i := 0; i < n; i++ {
		h.AddEdge(i, (i+1)%n)
	}
	return h
}

// Clique returns the binary clique K_n: one edge per vertex pair.
func Clique(n int) *Hypergraph {
	h := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			h.AddEdge(i, j)
		}
	}
	return h
}

// Star returns the star query: edges {0, i} for 1 ≤ i < n, centered at 0.
func Star(n int) *Hypergraph {
	h := New(n)
	for i := 1; i < n; i++ {
		h.AddEdge(0, i)
	}
	return h
}

// Grid returns the rows×cols grid graph (vertex r*cols+c), the standard
// bounded-treewidth PGM benchmark (tw = min(rows, cols)).
func Grid(rows, cols int) *Hypergraph {
	h := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				h.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				h.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return h
}

// LoomisWhitney returns LW(n): all (n-1)-subsets of [n] as edges; its
// fractional cover number is n/(n-1).
func LoomisWhitney(n int) *Hypergraph {
	h := New(n)
	for skip := 0; skip < n; skip++ {
		var e []int
		for v := 0; v < n; v++ {
			if v != skip {
				e = append(e, v)
			}
		}
		h.AddEdge(e...)
	}
	return h
}

// Random returns a hypergraph with n vertices and m random edges of sizes in
// [1, maxArity], drawn from rng.  Every vertex is touched by at least one
// edge (extra singleton edges are appended if needed) so cover LPs are
// feasible.
func Random(rng *rand.Rand, n, m, maxArity int) *Hypergraph {
	h := New(n)
	touched := make([]bool, n)
	for i := 0; i < m; i++ {
		arity := 1 + rng.Intn(maxArity)
		if arity > n {
			arity = n
		}
		seen := map[int]bool{}
		for len(seen) < arity {
			seen[rng.Intn(n)] = true
		}
		var e []int
		for v := range seen {
			e = append(e, v)
			touched[v] = true
		}
		h.AddEdge(e...)
	}
	for v, ok := range touched {
		if !ok {
			h.AddEdge(v)
		}
	}
	return h
}
