package hypergraph

import (
	"fmt"

	"github.com/faqdb/faq/internal/bitset"
)

// Decomposition is a tree decomposition (Definition 4.3): a tree whose nodes
// carry vertex bags covering every edge, with the running-intersection
// property.  Parent[i] = -1 marks a root; the structure may be a forest for
// disconnected hypergraphs.
type Decomposition struct {
	Bags   []bitset.Set
	Parent []int
}

// DecompositionFromOrdering builds the tree decomposition induced by a
// vertex ordering (the standard elimination construction behind Lemma 4.12):
// bag k is U_k from the elimination sequence, and bag k's parent is the bag
// of the latest-positioned vertex of U_k − {v_k}.
func DecompositionFromOrdering(h *Hypergraph, order []int) *Decomposition {
	steps := h.EliminationSequence(order, bitset.Set{})
	pos := make([]int, h.N) // vertex -> position in order
	for i, v := range order {
		pos[v] = i
	}
	bagOf := make([]int, h.N) // vertex -> index of its bag (same as position)
	for i := range bagOf {
		bagOf[i] = i
	}
	d := &Decomposition{
		Bags:   make([]bitset.Set, h.N),
		Parent: make([]int, h.N),
	}
	for k, s := range steps {
		bag := s.U.Clone()
		bag.Add(s.Vertex) // ensure non-empty bags even for isolated vertices
		d.Bags[k] = bag
		d.Parent[k] = -1
		// Parent: bag of the vertex in U_k − {v_k} eliminated soonest after
		// v_k, i.e. with the largest position < k.
		best := -1
		s.U.ForEach(func(u int) {
			if u == s.Vertex {
				return
			}
			if pos[u] > best && pos[u] < k {
				best = pos[u]
			}
		})
		if best >= 0 {
			d.Parent[k] = best
		}
	}
	return d
}

// Validate checks the two tree-decomposition properties against h:
// (a) every edge is contained in some bag, and (b) for every vertex the bags
// containing it form a connected subtree.
func (d *Decomposition) Validate(h *Hypergraph) error {
	for i, e := range h.Edges {
		ok := false
		for _, b := range d.Bags {
			if e.SubsetOf(b) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("hypergraph: edge %d = %s not covered by any bag", i, e)
		}
	}
	// Running intersection: the nodes containing v must form one connected
	// component in the tree.
	for v := 0; v < h.N; v++ {
		var nodes []int
		for i, b := range d.Bags {
			if b.Contains(v) {
				nodes = append(nodes, i)
			}
		}
		if len(nodes) == 0 {
			continue
		}
		in := map[int]bool{}
		for _, n := range nodes {
			in[n] = true
		}
		// Union-find over tree edges restricted to nodes containing v.
		parent := map[int]int{}
		var find func(x int) int
		find = func(x int) int {
			if parent[x] != x {
				parent[x] = find(parent[x])
			}
			return parent[x]
		}
		for _, n := range nodes {
			parent[n] = n
		}
		for _, n := range nodes {
			p := d.Parent[n]
			if p >= 0 && in[p] {
				parent[find(n)] = find(p)
			}
		}
		root := find(nodes[0])
		for _, n := range nodes[1:] {
			if find(n) != root {
				return fmt.Errorf("hypergraph: bags containing vertex %d are disconnected", v)
			}
		}
	}
	return nil
}

// Width returns max over bags of g(bag).
func (d *Decomposition) Width(g func(bitset.Set) float64) float64 {
	w := 0.0
	for _, b := range d.Bags {
		if v := g(b); v > w {
			w = v
		}
	}
	return w
}

// EliminationOrder extracts a vertex ordering from the decomposition by GYO
// elimination: bags are processed leaves-first, and each bag emits (into the
// elimination sequence) the vertices that do not occur in its parent.  The
// returned σ is a listing order (eliminate from the back) whose induced
// g-width is at most the decomposition's g-width; this is the "standard way"
// used by Theorem 7.2 to turn per-node tree decompositions into orderings.
// Only vertices of `universe` are emitted.
func (d *Decomposition) EliminationOrder(universe bitset.Set) []int {
	n := len(d.Bags)
	children := make([][]int, n)
	roots := []int{}
	for i, p := range d.Parent {
		if p < 0 {
			roots = append(roots, i)
		} else {
			children[p] = append(children[p], i)
		}
	}
	seen := bitset.New()
	var elim []int // elimination sequence: first entry eliminated first
	var walk func(node int)
	walk = func(node int) {
		for _, c := range children[node] {
			walk(c)
		}
		var pbag bitset.Set
		if p := d.Parent[node]; p >= 0 {
			pbag = d.Bags[p]
		}
		d.Bags[node].ForEach(func(v int) {
			if !universe.Contains(v) || seen.Contains(v) || pbag.Contains(v) {
				return
			}
			seen.Add(v)
			elim = append(elim, v)
		})
	}
	for _, r := range roots {
		walk(r)
	}
	// Any universe vertices absent from all bags go last in elimination.
	universe.ForEach(func(v int) {
		if !seen.Contains(v) {
			elim = append(elim, v)
		}
	})
	// σ is the reverse of the elimination sequence.
	order := make([]int, len(elim))
	for i, v := range elim {
		order[len(elim)-1-i] = v
	}
	return order
}
