// Package hypergraph implements the combinatorial substrate of the FAQ
// engine: multi-hypergraphs of query variables, vertex orderings and their
// elimination hypergraph sequences (Section 4.4 of the paper), α- and
// β-acyclicity (Definitions 4.4/4.5), tree decompositions (Definition 4.3),
// and the width parameters tw, ρ, ρ* and fhtw (Definition 4.6) together with
// the AGM bound (Section 4.2).
package hypergraph

import (
	"fmt"
	"sort"
	"strings"

	"github.com/faqdb/faq/internal/bitset"
)

// Hypergraph is a multi-hypergraph on vertices 0..N-1.  Edges may repeat and
// may be empty (empty edges arise naturally during variable elimination).
type Hypergraph struct {
	N     int
	Edges []bitset.Set
}

// New returns a hypergraph with n vertices and no edges.
func New(n int) *Hypergraph {
	return &Hypergraph{N: n}
}

// NewWithEdges builds a hypergraph on n vertices from vertex-list edges.
func NewWithEdges(n int, edges ...[]int) *Hypergraph {
	h := New(n)
	for _, e := range edges {
		h.AddEdge(e...)
	}
	return h
}

// AddEdge appends an edge containing the given vertices and returns its index.
func (h *Hypergraph) AddEdge(verts ...int) int {
	for _, v := range verts {
		if v < 0 || v >= h.N {
			panic(fmt.Sprintf("hypergraph: vertex %d out of range [0, %d)", v, h.N))
		}
	}
	h.Edges = append(h.Edges, bitset.New(verts...))
	return len(h.Edges) - 1
}

// AddEdgeSet appends a copy of the given vertex set as an edge.
func (h *Hypergraph) AddEdgeSet(s bitset.Set) int {
	h.Edges = append(h.Edges, s.Clone())
	return len(h.Edges) - 1
}

// Clone returns a deep copy.
func (h *Hypergraph) Clone() *Hypergraph {
	c := New(h.N)
	c.Edges = make([]bitset.Set, len(h.Edges))
	for i, e := range h.Edges {
		c.Edges[i] = e.Clone()
	}
	return c
}

// Vertices returns the set {0, ..., N-1}.
func (h *Hypergraph) Vertices() bitset.Set { return bitset.Range(h.N) }

// Incident returns the indices of edges containing v.
func (h *Hypergraph) Incident(v int) []int {
	var out []int
	for i, e := range h.Edges {
		if e.Contains(v) {
			out = append(out, i)
		}
	}
	return out
}

// Neighborhood returns the union of all edges containing v (v included if it
// appears in any edge).  This is the set U in the elimination sequence.
func (h *Hypergraph) Neighborhood(v int) bitset.Set {
	var u bitset.Set
	for _, e := range h.Edges {
		if e.Contains(v) {
			u.UnionWith(e)
		}
	}
	return u
}

// EdgeLists returns the edges as sorted vertex slices, for LP consumption.
func (h *Hypergraph) EdgeLists() [][]int {
	out := make([][]int, len(h.Edges))
	for i, e := range h.Edges {
		out[i] = e.Elems()
	}
	return out
}

// GaifmanAdj returns the adjacency sets of the Gaifman (primal) graph:
// adj[v] is the set of vertices co-occurring with v in some edge, v excluded.
func (h *Hypergraph) GaifmanAdj() []bitset.Set {
	adj := make([]bitset.Set, h.N)
	for _, e := range h.Edges {
		elems := e.Elems()
		for _, v := range elems {
			adj[v].UnionWith(e)
		}
	}
	for v := range adj {
		adj[v].Remove(v)
	}
	return adj
}

// ConnectedComponents returns the connected components of the sub-hypergraph
// induced by within (only vertices of within, only edge intersections with
// within).  Isolated vertices of within (touching no edge inside within) are
// returned as singleton components.  Components are sorted by their minimum
// vertex, and vertices keep their global ids.
func (h *Hypergraph) ConnectedComponents(within bitset.Set) []bitset.Set {
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	within.ForEach(func(v int) { parent[v] = v })
	for _, e := range h.Edges {
		in := e.Intersect(within).Elems()
		for i := 1; i < len(in); i++ {
			union(in[0], in[i])
		}
	}
	groups := map[int]*bitset.Set{}
	var roots []int
	within.ForEach(func(v int) {
		r := find(v)
		g, ok := groups[r]
		if !ok {
			s := bitset.New()
			groups[r] = &s
			g = &s
			roots = append(roots, r)
		}
		g.Add(v)
	})
	comps := make([]bitset.Set, 0, len(roots))
	for _, r := range roots {
		comps = append(comps, *groups[r])
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].Min() < comps[j].Min() })
	return comps
}

// Restrict returns a new hypergraph on the same vertex universe whose edges
// are the non-empty intersections S ∩ within for S ∈ Edges.
func (h *Hypergraph) Restrict(within bitset.Set) *Hypergraph {
	r := New(h.N)
	for _, e := range h.Edges {
		in := e.Intersect(within)
		if !in.IsEmpty() {
			r.Edges = append(r.Edges, in)
		}
	}
	return r
}

// String renders the hypergraph as "n=5 E={0,1},{1,2}".
func (h *Hypergraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d E=", h.N)
	for i, e := range h.Edges {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e.String())
	}
	return b.String()
}

// EliminationStep describes one step of the elimination hypergraph sequence
// of Definition 5.4 for a vertex ordering σ = (v_1, ..., v_n): vertices are
// eliminated from v_n down to v_1.
type EliminationStep struct {
	Vertex   int
	U        bitset.Set // union of edges incident to Vertex at elimination time
	Boundary []int      // indices into the current edge list of ∂(Vertex)
	Product  bool       // eliminated as a product variable (strip, no merge)
}

// EliminationSequence runs the elimination hypergraph sequence for the
// ordering order.  Vertices in product are eliminated product-style: they
// are removed from every incident edge without forming the union edge
// (Definition 5.4, the ⊕(k+1) = ⊗ case).  The returned slice is aligned with
// order: steps[k] describes the elimination of order[k] (which happens at
// time n-k).  Pass an empty product set for the classical (semiring-only)
// sequence of Section 4.4.
func (h *Hypergraph) EliminationSequence(order []int, product bitset.Set) []EliminationStep {
	if len(order) != h.N {
		panic(fmt.Sprintf("hypergraph: ordering has %d vertices, want %d", len(order), h.N))
	}
	edges := make([]bitset.Set, len(h.Edges))
	for i, e := range h.Edges {
		edges[i] = e.Clone()
	}
	steps := make([]EliminationStep, h.N)
	for k := h.N - 1; k >= 0; k-- {
		v := order[k]
		var u bitset.Set
		var boundary []int
		for i, e := range edges {
			if e.Contains(v) {
				boundary = append(boundary, i)
				u.UnionWith(e)
			}
		}
		isProduct := product.Contains(v)
		steps[k] = EliminationStep{Vertex: v, U: u, Boundary: boundary, Product: isProduct}
		if isProduct {
			for _, i := range boundary {
				edges[i].Remove(v)
			}
			continue
		}
		// Replace ∂(v) with the single residual edge U − {v}.
		keep := edges[:0]
		bi := 0
		for i, e := range edges {
			if bi < len(boundary) && boundary[bi] == i {
				bi++
				continue
			}
			keep = append(keep, e)
		}
		res := u.Clone()
		res.Remove(v)
		edges = append(keep, res)
	}
	return steps
}

// InducedWidth returns max_k g(U_k) over the semiring-only elimination
// sequence of order (Definition 4.11).
func (h *Hypergraph) InducedWidth(order []int, g func(bitset.Set) float64) float64 {
	steps := h.EliminationSequence(order, bitset.Set{})
	w := 0.0
	for _, s := range steps {
		if v := g(s.U); v > w {
			w = v
		}
	}
	return w
}
