package hypergraph

import (
	"math"

	"github.com/faqdb/faq/internal/bitset"
	"github.com/faqdb/faq/internal/linprog"
)

// WidthCalc computes (and caches) cover numbers against a fixed hypergraph.
// The fractional edge cover ρ*(B) is the LP of Section 4.2; the integral
// cover ρ(B) is its 0/1 restriction.  Caching matters: the width dynamic
// programs evaluate ρ* on many repeated vertex sets.
type WidthCalc struct {
	H        *Hypergraph
	edges    [][]int
	rhoStar  map[string]float64
	rhoInt   map[string]int
	lambdaOf map[string][]float64
}

// NewWidthCalc returns a calculator for h.  The hypergraph must not be
// mutated afterwards.
func NewWidthCalc(h *Hypergraph) *WidthCalc {
	return &WidthCalc{
		H:        h,
		edges:    h.EdgeLists(),
		rhoStar:  map[string]float64{},
		rhoInt:   map[string]int{},
		lambdaOf: map[string][]float64{},
	}
}

// RhoStar returns the fractional edge cover number ρ*(B) of B using the
// edges of H, or +Inf if some vertex of B lies in no edge.
func (w *WidthCalc) RhoStar(b bitset.Set) float64 {
	if b.IsEmpty() {
		return 0
	}
	key := b.Key()
	if v, ok := w.rhoStar[key]; ok {
		return v
	}
	val, lam, err := linprog.UniformCover(w.edges, b.Elems())
	if err != nil {
		val = math.Inf(1)
		lam = nil
	}
	w.rhoStar[key] = val
	w.lambdaOf[key] = lam
	return val
}

// Lambda returns an optimal fractional cover λ for B (one weight per edge),
// or nil if B is not coverable.  RhoStar(B) must have been called or is
// called implicitly.
func (w *WidthCalc) Lambda(b bitset.Set) []float64 {
	w.RhoStar(b)
	return w.lambdaOf[b.Key()]
}

// Rho returns the integral edge cover number ρ(B), or a number > len(edges)
// if B is not coverable.
func (w *WidthCalc) Rho(b bitset.Set) int {
	if b.IsEmpty() {
		return 0
	}
	key := b.Key()
	if v, ok := w.rhoInt[key]; ok {
		return v
	}
	v := w.coverSearch(b, len(w.H.Edges)+1)
	w.rhoInt[key] = v
	return v
}

// coverSearch is a branch-and-bound exact set cover: pick the lowest
// uncovered vertex and branch on the edges containing it.
func (w *WidthCalc) coverSearch(b bitset.Set, budget int) int {
	if b.IsEmpty() {
		return 0
	}
	if budget <= 0 {
		return len(w.H.Edges) + 1
	}
	v := b.Min()
	best := len(w.H.Edges) + 1
	for _, e := range w.H.Edges {
		if !e.Contains(v) {
			continue
		}
		rest := b.Minus(e)
		sub := w.coverSearch(rest, minInt(budget, best)-1)
		if sub+1 < best {
			best = sub + 1
		}
	}
	return best
}

// AGM returns the AGM bound Π_S |ψ_S|^{λ*_S} for covering B, where sizes[i]
// is the listing size of the factor on edge i (Section 4.2, Eq. (3)).
// Edges with size 0 would make the whole query empty; sizes must be ≥ 1.
// The second result is the optimizing λ.  AGM returns +Inf when B is not
// coverable by the edges.
func (w *WidthCalc) AGM(b bitset.Set, sizes []float64) (float64, []float64) {
	if b.IsEmpty() {
		return 1, make([]float64, len(w.edges))
	}
	cost := make([]float64, len(w.edges))
	for i, s := range sizes {
		if s < 1 {
			s = 1
		}
		cost[i] = math.Log2(s)
	}
	val, lam, err := linprog.FractionalCover(w.edges, cost, b.Elems())
	if err != nil {
		return math.Inf(1), nil
	}
	return math.Exp2(val), lam
}

// --- width parameters as minimax elimination problems (Corollary 4.13) ---

// Treewidth returns tw(H) and an optimal vertex ordering, computed exactly
// by dynamic programming over vertex subsets.  Exponential in N; intended
// for query-complexity-sized hypergraphs (N ≤ ~20).
func (w *WidthCalc) Treewidth() (float64, []int) {
	dp := &ElimDP{
		H:    w.H,
		Cost: func(v int, u bitset.Set) float64 { return float64(u.Len() - 1) },
	}
	val, order, _ := dp.Solve()
	return val, order
}

// FHTW returns the fractional hypertree width fhtw(H) and an optimal vertex
// ordering (Corollary 4.13: fhtw ≤ w iff some ordering has ρ*(U_k) ≤ w for
// all k).  Exact and exponential in N.
func (w *WidthCalc) FHTW() (float64, []int) {
	dp := &ElimDP{
		H:    w.H,
		Cost: func(v int, u bitset.Set) float64 { return w.RhoStar(u) },
	}
	val, order, _ := dp.Solve()
	return val, order
}

// HTW returns the (generalized) hypertree width computed through integral
// edge covers of the elimination sets, with an optimal ordering.
func (w *WidthCalc) HTW() (float64, []int) {
	dp := &ElimDP{
		H:    w.H,
		Cost: func(v int, u bitset.Set) float64 { return float64(w.Rho(u)) },
	}
	val, order, _ := dp.Solve()
	return val, order
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
