package hypergraph

import (
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/bitset"
)

func TestAlphaAcyclicKnownCases(t *testing.T) {
	cases := []struct {
		name string
		h    *Hypergraph
		want bool
	}{
		{"path", Path(5), true},
		{"star", Star(5), true},
		{"triangle", Cycle(3), false},
		{"C4", Cycle(4), false},
		// Adding the full edge makes any hypergraph α-acyclic (the paper's
		// motivation for β-acyclicity after Definition 4.4).
		{"triangle+full", NewWithEdges(3, []int{0, 1}, []int{0, 2}, []int{1, 2}, []int{0, 1, 2}), true},
		{"two-overlapping-triples", NewWithEdges(5, []int{0, 1, 2}, []int{2, 3, 4}), true},
		{"empty", New(0), true},
	}
	for _, c := range cases {
		if got := c.h.IsAlphaAcyclic(); got != c.want {
			t.Errorf("%s: α-acyclic = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestGYOJoinTree(t *testing.T) {
	// Acyclic 3-edge query: the join forest must link every absorbed edge.
	h := NewWithEdges(5, []int{0, 1}, []int{1, 2, 3}, []int{3, 4})
	ok, parent := h.GYO()
	if !ok {
		t.Fatal("should be α-acyclic")
	}
	roots := 0
	for _, p := range parent {
		if p == -1 {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("join tree has %d roots, want 1 (parents: %v)", roots, parent)
	}
}

func TestBetaAcyclicKnownCases(t *testing.T) {
	cases := []struct {
		name string
		h    *Hypergraph
		want bool
	}{
		{"path", Path(5), true},
		{"nested-chain", NewWithEdges(3, []int{0}, []int{0, 1}, []int{0, 1, 2}), true},
		{"triangle", Cycle(3), false},
		// α-acyclic but not β-acyclic: triangle plus covering edge.
		{"triangle+full", NewWithEdges(3, []int{0, 1}, []int{0, 2}, []int{1, 2}, []int{0, 1, 2}), false},
		{"star", Star(5), true},
	}
	for _, c := range cases {
		if got := c.h.IsBetaAcyclic(); got != c.want {
			t.Errorf("%s: β-acyclic = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestNestedEliminationOrderChainProperty(t *testing.T) {
	// For a β-acyclic hypergraph the NEO must satisfy Proposition 4.10:
	// at every elimination step the incident edges form an inclusion chain
	// (under strip semantics).
	h := NewWithEdges(4, []int{0}, []int{0, 1}, []int{0, 1, 2}, []int{0, 1, 2, 3})
	order, ok := h.NestedEliminationOrder()
	if !ok {
		t.Fatal("nested chain should be β-acyclic")
	}
	edges := make([]bitset.Set, len(h.Edges))
	for i, e := range h.Edges {
		edges[i] = e.Clone()
	}
	for k := len(order) - 1; k >= 0; k-- {
		v := order[k]
		var inc []bitset.Set
		for _, e := range edges {
			if e.Contains(v) {
				inc = append(inc, e.Clone())
			}
		}
		if !isChain(inc) {
			t.Fatalf("incident edges of %d not a chain", v)
		}
		for i := range edges {
			edges[i].Remove(v)
		}
	}
}

// betaAcyclicByDefinition checks Definition 4.5 directly: every subset of
// edges induces an α-acyclic hypergraph.
func betaAcyclicByDefinition(h *Hypergraph) bool {
	m := len(h.Edges)
	for mask := 0; mask < 1<<m; mask++ {
		sub := New(h.N)
		for j := 0; j < m; j++ {
			if mask&(1<<j) != 0 {
				sub.AddEdgeSet(h.Edges[j])
			}
		}
		if !sub.IsAlphaAcyclic() {
			return false
		}
	}
	return true
}

// Property: the nest-point elimination characterization agrees with the
// exhaustive Definition 4.5 on random small hypergraphs.
func TestQuickBetaAcyclicMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		h := Random(rng, 2+rng.Intn(4), 1+rng.Intn(4), 3)
		if got, want := h.IsBetaAcyclic(), betaAcyclicByDefinition(h); got != want {
			t.Fatalf("trial %d on %v: nest-point says %v, definition says %v", trial, h, got, want)
		}
	}
}

// Property: β-acyclic implies α-acyclic (Definition 4.5 includes the full
// edge set as one of its subsets).
func TestQuickBetaImpliesAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		h := Random(rng, 2+rng.Intn(5), 1+rng.Intn(5), 4)
		if h.IsBetaAcyclic() && !h.IsAlphaAcyclic() {
			t.Fatalf("trial %d: β-acyclic but not α-acyclic: %v", trial, h)
		}
	}
}

func TestDecompositionFromOrderingValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		h := Random(rng, n, 1+rng.Intn(6), 3)
		order := rng.Perm(n)
		d := DecompositionFromOrdering(h, order)
		if err := d.Validate(h); err != nil {
			t.Fatalf("trial %d (order %v, h %v): %v", trial, order, h, err)
		}
	}
}

func TestDecompositionEliminationOrderRoundTrip(t *testing.T) {
	// Extracting an ordering from a decomposition must not increase the
	// ρ*-width beyond the decomposition's width.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(5)
		h := Random(rng, n, 2+rng.Intn(4), 3)
		w := NewWidthCalc(h)
		_, opt := w.FHTW()
		d := DecompositionFromOrdering(h, opt)
		bagWidth := d.Width(func(b bitset.Set) float64 { return w.RhoStar(b) })
		back := d.EliminationOrder(h.Vertices())
		if len(back) != n {
			t.Fatalf("trial %d: round-trip ordering has %d vertices, want %d", trial, len(back), n)
		}
		iw := h.InducedWidth(back, func(u bitset.Set) float64 { return w.RhoStar(u) })
		if iw > bagWidth+1e-6 {
			t.Fatalf("trial %d: induced width %v exceeds bag width %v", trial, iw, bagWidth)
		}
	}
}

func TestDecompositionWidth(t *testing.T) {
	h := Cycle(4)
	d := DecompositionFromOrdering(h, []int{0, 1, 2, 3})
	got := d.Width(func(b bitset.Set) float64 { return float64(b.Len()) })
	if got < 3 {
		t.Fatalf("C4 elimination bags should reach size 3, got %v", got)
	}
	if err := d.Validate(h); err != nil {
		t.Fatal(err)
	}
}
