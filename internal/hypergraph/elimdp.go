package hypergraph

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/faqdb/faq/internal/bitset"
)

// ErrTooLarge is returned by ElimDP.Solve when the state space exceeds the
// configured limit; callers should fall back to GreedyOrder.
var ErrTooLarge = errors.New("hypergraph: state space too large for exact elimination DP")

// ElimDP solves minimax vertex-elimination problems exactly:
//
//	minimize over orderings σ the value  max_k Cost(σ_k, U_k^σ)
//
// where U_k is taken from the elimination hypergraph sequence (Definition
// 5.4), vertices in Product are eliminated by stripping (no union edge), and
// Allowed restricts which vertex may be eliminated first among a remaining
// set (used to respect the precedence poset of Section 6 and the
// free-variables-last-to-eliminate rule).
//
// With Product empty, Allowed nil and Cost = |U|-1 this computes treewidth;
// with Cost = ρ* it computes fhtw (Corollary 4.13); with the poset
// restriction it computes faqw(φ) over LinEx(P) (Corollary 6.14).
//
// The DP memoizes on the set of remaining vertices.  This is sound because
// the edge multiset reached after eliminating a set of vertices does not
// depend on the order of elimination (product vertices only shrink edges;
// semiring vertices merge the edges of a connected region, and both
// operations commute at the edge-set level).
type ElimDP struct {
	H       *Hypergraph
	Cost    func(v int, u bitset.Set) float64
	Product bitset.Set
	Allowed func(remaining bitset.Set, v int) bool
	// MaxStates caps the memo size; 0 means a default of 1<<22.
	MaxStates int
	// Ctx, when non-nil, is polled during the subset recursion so an
	// engine can abandon an adversarially wide planning problem; a
	// cancelled Solve returns Ctx.Err().
	Ctx context.Context
}

type dpEntry struct {
	cost float64
	next int // vertex eliminated first from this state
}

// Solve returns the optimal minimax cost and an optimal vertex ordering
// σ = (v_1, ..., v_n) (listing order; v_n is eliminated first).
func (dp *ElimDP) Solve() (float64, []int, error) {
	limit := dp.MaxStates
	if limit == 0 {
		limit = 1 << 22
	}
	memo := map[string]dpEntry{}
	edges := make([]bitset.Set, len(dp.H.Edges))
	for i, e := range dp.H.Edges {
		edges[i] = e.Clone()
	}
	full := dp.H.Vertices()
	cost, err := dp.solve(full, edges, memo, limit)
	if err != nil {
		return 0, nil, err
	}
	// Reconstruct σ by replaying the DP decisions.
	order := make([]int, dp.H.N)
	r := full.Clone()
	for pos := dp.H.N - 1; pos >= 0; pos-- {
		ent := memo[r.Key()]
		order[pos] = ent.next
		r.Remove(ent.next)
	}
	return cost, order, nil
}

func (dp *ElimDP) solve(remaining bitset.Set, edges []bitset.Set, memo map[string]dpEntry, limit int) (float64, error) {
	if remaining.IsEmpty() {
		return 0, nil
	}
	key := remaining.Key()
	if ent, ok := memo[key]; ok {
		return ent.cost, nil
	}
	if len(memo) >= limit {
		return 0, ErrTooLarge
	}
	if dp.Ctx != nil {
		if err := dp.Ctx.Err(); err != nil {
			return 0, err
		}
	}
	best := math.Inf(1)
	bestV := -1
	candidates := remaining.Elems()
	for _, v := range candidates {
		if dp.Allowed != nil && !dp.Allowed(remaining, v) {
			continue
		}
		u, child := eliminate(edges, v, dp.Product.Contains(v))
		c := dp.Cost(v, u)
		rest := remaining.Clone()
		rest.Remove(v)
		sub, err := dp.solve(rest, child, memo, limit)
		if err != nil {
			return 0, err
		}
		if sub > c {
			c = sub
		}
		if c < best {
			best = c
			bestV = v
		}
	}
	if bestV < 0 {
		return 0, fmt.Errorf("hypergraph: no vertex of %s may be eliminated (inconsistent Allowed predicate)", remaining)
	}
	memo[key] = dpEntry{cost: best, next: bestV}
	return best, nil
}

// eliminate applies one elimination step to a copy of edges and returns
// (U_v, new edge list).  The input slice is not modified.
func eliminate(edges []bitset.Set, v int, product bool) (bitset.Set, []bitset.Set) {
	var u bitset.Set
	out := make([]bitset.Set, 0, len(edges)+1)
	for _, e := range edges {
		if !e.Contains(v) {
			out = append(out, e)
			continue
		}
		u.UnionWith(e)
		if product {
			s := e.Clone()
			s.Remove(v)
			out = append(out, s)
		}
	}
	if !product {
		res := u.Clone()
		res.Remove(v)
		out = append(out, res)
	}
	return u, out
}

// GreedyOrder builds a vertex ordering heuristically: at each step it
// eliminates the allowed vertex with the smallest score(v, U_v) under the
// current hypergraph.  It returns the ordering (listing order) and the
// realized minimax cost under Cost.  Score and Cost may differ (e.g. min-fill
// score with ρ* cost).
func GreedyOrder(h *Hypergraph, score, cost func(v int, u bitset.Set) float64,
	product bitset.Set, allowed func(remaining bitset.Set, v int) bool) ([]int, float64) {

	edges := make([]bitset.Set, len(h.Edges))
	for i, e := range h.Edges {
		edges[i] = e.Clone()
	}
	remaining := h.Vertices()
	order := make([]int, h.N)
	worst := 0.0
	for pos := h.N - 1; pos >= 0; pos-- {
		bestV := -1
		bestScore := math.Inf(1)
		var bestU bitset.Set
		var bestEdges []bitset.Set
		remaining.ForEach(func(v int) {
			if allowed != nil && !allowed(remaining, v) {
				return
			}
			u, child := eliminate(edges, v, product.Contains(v))
			if s := score(v, u); s < bestScore {
				bestScore = s
				bestV = v
				bestU = u
				bestEdges = child
			}
		})
		if bestV < 0 {
			// Inconsistent predicate; fall back to the minimum remaining vertex.
			bestV = remaining.Min()
			bestU, bestEdges = eliminate(edges, bestV, product.Contains(bestV))
		}
		if c := cost(bestV, bestU); c > worst {
			worst = c
		}
		order[pos] = bestV
		remaining.Remove(bestV)
		edges = bestEdges
	}
	return order, worst
}

// MinFillScore returns a score function for GreedyOrder implementing the
// classic min-fill heuristic: the number of Gaifman edges that eliminating v
// would add among its current neighbors.
func MinFillScore(h *Hypergraph) func(v int, u bitset.Set) float64 {
	adj := h.GaifmanAdj()
	return func(v int, u bitset.Set) float64 {
		nb := u.Clone()
		nb.Remove(v)
		elems := nb.Elems()
		fill := 0
		for i := 0; i < len(elems); i++ {
			for j := i + 1; j < len(elems); j++ {
				if !adj[elems[i]].Contains(elems[j]) {
					fill++
				}
			}
		}
		return float64(fill)
	}
}
