package hypergraph

import (
	"math"
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/bitset"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestRhoStarKnownValues(t *testing.T) {
	cases := []struct {
		name string
		h    *Hypergraph
		b    bitset.Set
		want float64
	}{
		{"triangle", Cycle(3), bitset.New(0, 1, 2), 1.5},
		{"path-cover", Path(4), bitset.New(0, 1, 2, 3), 2},
		{"LW4", LoomisWhitney(4), bitset.New(0, 1, 2, 3), 4.0 / 3.0},
		{"C5", Cycle(5), bitset.New(0, 1, 2, 3, 4), 2.5},
		{"single-vertex", Cycle(3), bitset.New(1), 1},
		{"empty", Cycle(3), bitset.New(), 0},
	}
	for _, c := range cases {
		w := NewWidthCalc(c.h)
		if got := w.RhoStar(c.b); !approx(got, c.want) {
			t.Errorf("%s: ρ* = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRhoStarInfeasible(t *testing.T) {
	h := New(3)
	h.AddEdge(0, 1) // vertex 2 uncovered
	w := NewWidthCalc(h)
	if got := w.RhoStar(bitset.New(2)); !math.IsInf(got, 1) {
		t.Fatalf("ρ* of uncoverable set = %v, want +Inf", got)
	}
}

func TestRhoIntegral(t *testing.T) {
	w := NewWidthCalc(Cycle(3))
	if got := w.Rho(bitset.New(0, 1, 2)); got != 2 {
		t.Fatalf("ρ(triangle) = %d, want 2", got)
	}
	if got := w.Rho(bitset.New(0, 1)); got != 1 {
		t.Fatalf("ρ(one edge) = %d, want 1", got)
	}
	if got := w.Rho(bitset.New()); got != 0 {
		t.Fatalf("ρ(∅) = %d, want 0", got)
	}
}

func TestRhoCaching(t *testing.T) {
	w := NewWidthCalc(Cycle(5))
	b := bitset.New(0, 1, 2, 3, 4)
	first := w.RhoStar(b)
	second := w.RhoStar(b)
	if first != second {
		t.Fatal("cache returned a different value")
	}
	if len(w.rhoStar) != 1 {
		t.Fatalf("cache size %d, want 1", len(w.rhoStar))
	}
}

func TestAGMTriangle(t *testing.T) {
	// AGM bound of the triangle with all |ψ| = N is N^{3/2}.
	w := NewWidthCalc(Cycle(3))
	n := 1024.0
	val, lam := w.AGM(bitset.New(0, 1, 2), []float64{n, n, n})
	if !approx(val, math.Pow(n, 1.5)) {
		t.Fatalf("AGM = %v, want %v", val, math.Pow(n, 1.5))
	}
	sum := lam[0] + lam[1] + lam[2]
	if !approx(sum, 1.5) {
		t.Fatalf("Σλ = %v, want 1.5", sum)
	}
}

func TestAGMAsymmetricSizes(t *testing.T) {
	// Path {0,1},{1,2} with sizes 4 and 16: cover {0,1,2} needs both edges,
	// AGM = 4·16 = 64.
	w := NewWidthCalc(Path(3))
	val, _ := w.AGM(bitset.New(0, 1, 2), []float64{4, 16})
	if !approx(val, 64) {
		t.Fatalf("AGM = %v, want 64", val)
	}
}

func TestTreewidthKnownValues(t *testing.T) {
	cases := []struct {
		name string
		h    *Hypergraph
		want float64
	}{
		{"path", Path(6), 1},
		{"cycle", Cycle(6), 2},
		{"K4", Clique(4), 3},
		{"star", Star(6), 1},
		{"grid2x4", Grid(2, 4), 2},
		{"grid3x3", Grid(3, 3), 3},
	}
	for _, c := range cases {
		w := NewWidthCalc(c.h)
		got, order := w.Treewidth()
		if !approx(got, c.want) {
			t.Errorf("%s: tw = %v, want %v", c.name, got, c.want)
		}
		// The returned ordering must realize the width.
		if iw := c.h.InducedWidth(order, func(u bitset.Set) float64 { return float64(u.Len() - 1) }); !approx(iw, got) {
			t.Errorf("%s: ordering realizes %v, claimed %v", c.name, iw, got)
		}
	}
}

func TestFHTWKnownValues(t *testing.T) {
	cases := []struct {
		name string
		h    *Hypergraph
		want float64
	}{
		{"triangle", Cycle(3), 1.5},
		// Every size-3 bag of C4 induces only a 2-path of edges, so ρ* = 2.
		{"C4", Cycle(4), 2},
		{"path", Path(5), 1},
		{"LW4", LoomisWhitney(4), 4.0 / 3.0},
		{"acyclic-3uniform", NewWithEdges(5, []int{0, 1, 2}, []int{2, 3, 4}), 1},
	}
	for _, c := range cases {
		w := NewWidthCalc(c.h)
		got, order := w.FHTW()
		if !approx(got, c.want) {
			t.Errorf("%s: fhtw = %v, want %v", c.name, got, c.want)
		}
		if iw := c.h.InducedWidth(order, func(u bitset.Set) float64 { return w.RhoStar(u) }); !approx(iw, got) {
			t.Errorf("%s: ordering realizes %v, claimed %v", c.name, iw, got)
		}
	}
}

func TestHTWvsFHTWGap(t *testing.T) {
	// On the triangle htw (integral covers of bags) is 2 while fhtw is 1.5:
	// the gap InsideOut exploits over integral-cover PGM algorithms [54].
	w := NewWidthCalc(Cycle(3))
	htw, _ := w.HTW()
	fhtw, _ := w.FHTW()
	if htw != 2 || !approx(fhtw, 1.5) {
		t.Fatalf("htw = %v fhtw = %v, want 2 and 1.5", htw, fhtw)
	}
}

func TestElimDPAllowedPredicate(t *testing.T) {
	// Force vertex 0 to be eliminated first (it must be last in σ):
	// allowed(v) only if v == 0 or 0 already eliminated.
	h := Path(4)
	dp := &ElimDP{
		H:    h,
		Cost: func(v int, u bitset.Set) float64 { return float64(u.Len() - 1) },
		Allowed: func(rem bitset.Set, v int) bool {
			return v == 0 || !rem.Contains(0)
		},
	}
	val, order, err := dp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if order[len(order)-1] != 0 {
		t.Fatalf("σ = %v: vertex 0 should be last (eliminated first)", order)
	}
	// Eliminating the path endpoint first keeps width 1.
	if !approx(val, 1) {
		t.Fatalf("width = %v, want 1", val)
	}
}

func TestElimDPProductVariables(t *testing.T) {
	// Star with product center: stripping the center leaves singletons, so
	// every U for the leaves is tiny.  With semiring center eliminated first
	// the union would be the whole star.
	h := Star(5)
	w := NewWidthCalc(h)
	costAll := func(v int, u bitset.Set) float64 { return w.RhoStar(u) }
	dp := &ElimDP{H: h, Cost: costAll, Product: bitset.New(0)}
	val, _, err := dp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(val, 1) {
		t.Fatalf("width with product center = %v, want 1", val)
	}
}

func TestGreedyOrderMatchesExactOnTrees(t *testing.T) {
	h := Star(7)
	w := NewWidthCalc(h)
	cost := func(v int, u bitset.Set) float64 { return w.RhoStar(u) }
	_, width := GreedyOrder(h, cost, cost, bitset.Set{}, nil)
	if !approx(width, 1) {
		t.Fatalf("greedy width on star = %v, want 1", width)
	}
}

func TestGreedyNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		h := Random(rng, 7, 6, 3)
		w := NewWidthCalc(h)
		cost := func(v int, u bitset.Set) float64 { return w.RhoStar(u) }
		exact, _ := w.FHTW()
		_, greedy := GreedyOrder(h, MinFillScore(h), cost, bitset.Set{}, nil)
		if greedy < exact-1e-6 {
			t.Fatalf("trial %d: greedy %v beat exact %v", trial, greedy, exact)
		}
	}
}

func BenchmarkFHTWGrid3x3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := NewWidthCalc(Grid(3, 3))
		if v, _ := w.FHTW(); v < 1 {
			b.Fatal("bogus width")
		}
	}
}
