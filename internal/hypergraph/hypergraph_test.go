package hypergraph

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/faqdb/faq/internal/bitset"
)

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range vertex")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestIncidentAndNeighborhood(t *testing.T) {
	h := NewWithEdges(4, []int{0, 1}, []int{1, 2}, []int{3})
	if got := h.Incident(1); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("Incident(1) = %v", got)
	}
	if got := h.Neighborhood(1).Elems(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("Neighborhood(1) = %v", got)
	}
	if got := h.Neighborhood(3).Elems(); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("Neighborhood(3) = %v", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components {0,1,2} and {3,4}; vertex 5 isolated.
	h := NewWithEdges(6, []int{0, 1}, []int{1, 2}, []int{3, 4})
	comps := h.ConnectedComponents(h.Vertices())
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if !comps[0].Equal(bitset.New(0, 1, 2)) || !comps[1].Equal(bitset.New(3, 4)) || !comps[2].Equal(bitset.New(5)) {
		t.Fatalf("components = %v %v %v", comps[0], comps[1], comps[2])
	}
	// Restricting to {0, 2, 3, 4} splits {0} and {2} apart.
	comps = h.ConnectedComponents(bitset.New(0, 2, 3, 4))
	if len(comps) != 3 {
		t.Fatalf("restricted: got %d components, want 3", len(comps))
	}
}

func TestGaifmanAdj(t *testing.T) {
	h := NewWithEdges(4, []int{0, 1, 2}, []int{2, 3})
	adj := h.GaifmanAdj()
	if !adj[2].Equal(bitset.New(0, 1, 3)) {
		t.Fatalf("adj[2] = %v", adj[2])
	}
	if !adj[3].Equal(bitset.New(2)) {
		t.Fatalf("adj[3] = %v", adj[3])
	}
}

// Example 5.6's hypergraph: ψ{1,5} ψ{2,5} ψ{1,3,4} ψ{2,3,6} (0-indexed:
// {0,4},{1,4},{0,2,3},{1,2,5}).  Eliminating with σ = (0,1,2,3,4,5) the
// paper's trace gives U_6 = {2,3,6} → here U for vertex 5 is {1,2,5}, etc.
func example56Hypergraph() *Hypergraph {
	return NewWithEdges(6, []int{0, 4}, []int{1, 4}, []int{0, 2, 3}, []int{1, 2, 5})
}

func TestEliminationSequenceExample56(t *testing.T) {
	h := example56Hypergraph()
	order := []int{0, 1, 2, 3, 4, 5}
	steps := h.EliminationSequence(order, bitset.Set{})
	// Eliminate 5 (x6): ∂ = {1,2,5}; U = {1,2,5}.
	if !steps[5].U.Equal(bitset.New(1, 2, 5)) {
		t.Fatalf("U for x6 = %v", steps[5].U)
	}
	// Eliminate 4 (x5): edges now {0,4},{1,4},{0,2,3},{1,2}; U = {0,1,4}.
	if !steps[4].U.Equal(bitset.New(0, 1, 4)) {
		t.Fatalf("U for x5 = %v", steps[4].U)
	}
	// Eliminate 3 (x4): U = {0,2,3}.
	if !steps[3].U.Equal(bitset.New(0, 2, 3)) {
		t.Fatalf("U for x4 = %v", steps[3].U)
	}
	// Eliminate 2 (x3): edges {1,2},{0,1},{0,2}; U = {0,1,2}.
	if !steps[2].U.Equal(bitset.New(0, 1, 2)) {
		t.Fatalf("U for x3 = %v", steps[2].U)
	}
}

func TestEliminationSequenceProductStrips(t *testing.T) {
	// With vertex 2 marked product in a path 0-1-2-3, eliminating it must
	// not join {1,2} and {2,3} into {1,3}.
	h := Path(4)
	prod := bitset.New(2)
	steps := h.EliminationSequence([]int{0, 1, 3, 2}, prod)
	if !steps[3].Product {
		t.Fatal("vertex 2 should be eliminated product-style")
	}
	// After stripping 2, eliminating 3 sees only the shrunken edge {3}.
	if !steps[2].U.Equal(bitset.New(3)) {
		t.Fatalf("U for 3 = %v, want {3}", steps[2].U)
	}
}

func TestInducedWidthPathAndClique(t *testing.T) {
	size := func(u bitset.Set) float64 { return float64(u.Len() - 1) }
	p := Path(5)
	if w := p.InducedWidth([]int{0, 1, 2, 3, 4}, size); w != 1 {
		t.Fatalf("path induced width = %v, want 1", w)
	}
	k := Clique(4)
	if w := k.InducedWidth([]int{0, 1, 2, 3}, size); w != 3 {
		t.Fatalf("K4 induced width = %v, want 3", w)
	}
}

func TestRestrict(t *testing.T) {
	h := NewWithEdges(4, []int{0, 1, 2}, []int{2, 3})
	r := h.Restrict(bitset.New(0, 1))
	if len(r.Edges) != 1 || !r.Edges[0].Equal(bitset.New(0, 1)) {
		t.Fatalf("Restrict = %v", r)
	}
}

func TestBuilders(t *testing.T) {
	if g := Grid(3, 4); len(g.Edges) != 3*3+2*4 {
		t.Fatalf("grid edges = %d", len(g.Edges))
	}
	if lw := LoomisWhitney(4); len(lw.Edges) != 4 || lw.Edges[0].Len() != 3 {
		t.Fatal("LW(4) malformed")
	}
	if s := Star(5); len(s.Edges) != 4 {
		t.Fatal("star malformed")
	}
	rng := rand.New(rand.NewSource(3))
	h := Random(rng, 8, 5, 3)
	// Every vertex must be covered so LPs are feasible.
	cov := bitset.New()
	for _, e := range h.Edges {
		cov.UnionWith(e)
	}
	if !h.Vertices().SubsetOf(cov) {
		t.Fatal("Random left uncovered vertices")
	}
}
