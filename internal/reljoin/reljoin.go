// Package reljoin implements the Joins row of Table 1: natural join
// evaluation as a Boolean-semiring FAQ with all variables free (Example
// A.6), against a classical left-deep binary hash-join baseline.  On cyclic
// queries such as the triangle, InsideOut with worst-case-optimal
// intermediate joins runs within the AGM bound N^{3/2} while any binary
// join plan materializes Θ(N²) intermediate tuples on the skew instance.
package reljoin

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// Rel is a relation over query variables: Vars names the columns by query
// variable id, Rows holds the tuples.
type Rel struct {
	Name string
	Vars []int
	Rows [][]int
}

// Instance is a natural join query: the output is the set of assignments to
// all variables consistent with every relation.
type Instance struct {
	NumVars  int
	DomSizes []int
	Rels     []Rel
}

// ToQuery compiles the instance to a Boolean FAQ with every variable free.
func (in *Instance) ToQuery() (*core.Query[bool], error) {
	d := semiring.Bool()
	q := &core.Query[bool]{
		D:                d,
		NVars:            in.NumVars,
		DomSizes:         append([]int(nil), in.DomSizes...),
		NumFree:          in.NumVars,
		Aggs:             make([]core.Aggregate[bool], in.NumVars),
		IdempotentInputs: true,
	}
	for i := range q.Aggs {
		q.Aggs[i] = core.Free[bool]()
	}
	for _, r := range in.Rels {
		f, err := relFactor(d, r, in.DomSizes)
		if err != nil {
			return nil, err
		}
		q.Factors = append(q.Factors, f)
	}
	return q, nil
}

func relFactor(d *semiring.Domain[bool], r Rel, domSizes []int) (*factor.Factor[bool], error) {
	vars := append([]int(nil), r.Vars...)
	perm := make([]int, len(vars))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return vars[perm[a]] < vars[perm[b]] })
	sorted := make([]int, len(vars))
	for i, p := range perm {
		sorted[i] = vars[p]
	}
	var tuples [][]int
	values := make([]bool, 0, len(r.Rows))
	for _, row := range r.Rows {
		if len(row) != len(vars) {
			return nil, fmt.Errorf("reljoin: row %v of %s has %d columns, want %d", row, r.Name, len(row), len(vars))
		}
		t := make([]int, len(vars))
		for i, p := range perm {
			t[i] = row[p]
		}
		tuples = append(tuples, t)
		values = append(values, true)
	}
	return factor.New(d, sorted, tuples, values, func(a, b bool) bool { return a })
}

// RunInsideOut evaluates the join with the FAQ engine (worst-case-optimal
// multiway join + Yannakakis-style output filters) and returns the output
// tuples over variables 0..NumVars-1 (sorted ascending).
func (in *Instance) RunInsideOut() ([][]int, error) {
	q, err := in.ToQuery()
	if err != nil {
		return nil, err
	}
	prep, err := core.DefaultEngine[bool]().Prepare(q)
	if err != nil {
		return nil, err
	}
	res, err := prep.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res.Output.Tuples(), nil
}

// RunHashJoin evaluates the join with a left-deep binary hash-join plan in
// the given relation order, returning the output tuples and the peak
// intermediate result size — the quantity that blows up to Θ(N²) on cyclic
// skew instances.
func (in *Instance) RunHashJoin(order []int) ([][]int, int, error) {
	if len(order) == 0 {
		order = make([]int, len(in.Rels))
		for i := range order {
			order[i] = i
		}
	}
	cur := materialize(in.Rels[order[0]])
	peak := len(cur.Rows)
	for _, ri := range order[1:] {
		cur = hashJoin(cur, materialize(in.Rels[ri]))
		if len(cur.Rows) > peak {
			peak = len(cur.Rows)
		}
	}
	// Project/complete: the binary plan already carries all variables of
	// the joined relations; any instance variable never mentioned would be
	// unconstrained, which ToQuery rejects as well.
	sortRows(cur.Rows)
	out := dedupeRows(cur.Rows)
	return out, peak, nil
}

type table struct {
	Vars []int
	Rows [][]int
}

func materialize(r Rel) table {
	perm := make([]int, len(r.Vars))
	for i := range perm {
		perm[i] = i
	}
	vars := append([]int(nil), r.Vars...)
	sort.Slice(perm, func(a, b int) bool { return vars[perm[a]] < vars[perm[b]] })
	sorted := make([]int, len(vars))
	for i, p := range perm {
		sorted[i] = vars[p]
	}
	rows := make([][]int, len(r.Rows))
	for j, row := range r.Rows {
		t := make([]int, len(row))
		for i, p := range perm {
			t[i] = row[p]
		}
		rows[j] = t
	}
	return table{Vars: sorted, Rows: dedupeRows(rows)}
}

// hashJoin joins two tables on their shared variables.
func hashJoin(a, b table) table {
	shared, aPos, bPos := sharedVars(a.Vars, b.Vars)
	bOnly := make([]int, 0, len(b.Vars))
	bOnlyPos := make([]int, 0, len(b.Vars))
	for i, v := range b.Vars {
		if !containsInt(shared, v) {
			bOnly = append(bOnly, v)
			bOnlyPos = append(bOnlyPos, i)
		}
	}
	index := map[string][][]int{}
	for _, row := range b.Rows {
		k := keyOf(row, bPos)
		index[k] = append(index[k], row)
	}
	outVars := append(append([]int(nil), a.Vars...), bOnly...)
	var rows [][]int
	for _, row := range a.Rows {
		k := keyOf(row, aPos)
		for _, match := range index[k] {
			out := make([]int, 0, len(outVars))
			out = append(out, row...)
			for _, p := range bOnlyPos {
				out = append(out, match[p])
			}
			rows = append(rows, out)
		}
	}
	t := table{Vars: outVars, Rows: rows}
	return t.sorted()
}

// sorted reorders columns so Vars ascend (keeps output comparable).
func (t table) sorted() table {
	perm := make([]int, len(t.Vars))
	for i := range perm {
		perm[i] = i
	}
	vars := append([]int(nil), t.Vars...)
	sort.Slice(perm, func(a, b int) bool { return vars[perm[a]] < vars[perm[b]] })
	outVars := make([]int, len(vars))
	for i, p := range perm {
		outVars[i] = vars[p]
	}
	rows := make([][]int, len(t.Rows))
	for j, row := range t.Rows {
		r := make([]int, len(row))
		for i, p := range perm {
			r[i] = row[p]
		}
		rows[j] = r
	}
	return table{Vars: outVars, Rows: rows}
}

func sharedVars(a, b []int) (shared, aPos, bPos []int) {
	for i, v := range a {
		for j, w := range b {
			if v == w {
				shared = append(shared, v)
				aPos = append(aPos, i)
				bPos = append(bPos, j)
			}
		}
	}
	return
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func keyOf(row []int, pos []int) string {
	b := make([]byte, 0, len(pos)*4)
	for _, p := range pos {
		x := row[p]
		b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return string(b)
}

func sortRows(rows [][]int) {
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if rows[i][k] != rows[j][k] {
				return rows[i][k] < rows[j][k]
			}
		}
		return false
	})
}

func dedupeRows(rows [][]int) [][]int {
	sortRows(rows)
	var out [][]int
	for i, r := range rows {
		if i > 0 && equalRow(out[len(out)-1], r) {
			continue
		}
		out = append(out, r)
	}
	return out
}

func equalRow(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Instances.
// ---------------------------------------------------------------------------

// Triangle builds the triangle query R(x0,x1) ⋈ S(x1,x2) ⋈ T(x0,x2) from
// an edge list interpreted three ways.
func Triangle(dom int, edges [][]int) *Instance {
	return &Instance{
		NumVars:  3,
		DomSizes: []int{dom, dom, dom},
		Rels: []Rel{
			{Name: "R", Vars: []int{0, 1}, Rows: edges},
			{Name: "S", Vars: []int{1, 2}, Rows: edges},
			{Name: "T", Vars: []int{0, 2}, Rows: edges},
		},
	}
}

// SkewTriangleEdges builds the classic hard instance for binary join plans:
// the star edge set {0}×[k] ∪ [k]×{0} with k = n/2.  Every pairwise join
// has Θ(k²) = Θ(n²) tuples while the triangle output has Θ(n) tuples, and a
// worst-case optimal join touches only Θ(n).
func SkewTriangleEdges(n int) (edges [][]int, dom int) {
	k := n / 2
	if k < 1 {
		k = 1
	}
	for i := 1; i <= k; i++ {
		edges = append(edges, []int{0, i}, []int{i, 0})
	}
	edges = append(edges, []int{0, 0})
	return edges, k + 1
}

// RandomEdges draws n random pairs over [dom]².
func RandomEdges(rng *rand.Rand, n, dom int) [][]int {
	seen := map[[2]int]bool{}
	var edges [][]int
	for len(edges) < n && len(seen) < dom*dom {
		e := [2]int{rng.Intn(dom), rng.Intn(dom)}
		if seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, []int{e[0], e[1]})
	}
	return edges
}

// BruteForceJoin enumerates the full assignment box (testing oracle).
func (in *Instance) BruteForceJoin() [][]int {
	var out [][]int
	assignment := make([]int, in.NumVars)
	var rec func(i int)
	rec = func(i int) {
		if i == in.NumVars {
			for _, r := range in.Rels {
				if !relContains(r, assignment) {
					return
				}
			}
			out = append(out, append([]int(nil), assignment...))
			return
		}
		for x := 0; x < in.DomSizes[i]; x++ {
			assignment[i] = x
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

func relContains(r Rel, assignment []int) bool {
	for _, row := range r.Rows {
		ok := true
		for i, v := range r.Vars {
			if row[i] != assignment[v] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
