package reljoin

import (
	"math/rand"
	"reflect"
	"testing"
)

// sameRows compares tuple sets treating nil and empty as equal.
func sameRows(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestTriangleJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		dom := 2 + rng.Intn(4)
		edges := RandomEdges(rng, 1+rng.Intn(dom*dom), dom)
		in := Triangle(dom, edges)
		got, err := in.RunInsideOut()
		if err != nil {
			t.Fatal(err)
		}
		want := in.BruteForceJoin()
		if !sameRows(got, want) {
			t.Fatalf("trial %d: InsideOut %v, brute force %v", trial, got, want)
		}
		hj, _, err := in.RunHashJoin(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(hj, want) {
			t.Fatalf("trial %d: hash join %v, brute force %v", trial, hj, want)
		}
	}
}

func TestSkewInstanceIntermediateBlowup(t *testing.T) {
	// On the star instance the binary plan materializes Θ(k²) intermediate
	// tuples while the output (and the worst-case-optimal runtime) is Θ(k).
	edges, dom := SkewTriangleEdges(64)
	in := Triangle(dom, edges)
	out, peak, err := in.RunHashJoin(nil)
	if err != nil {
		t.Fatal(err)
	}
	k := 32
	if peak < k*k/2 {
		t.Fatalf("binary plan peak %d; expected Θ(k²) ≈ %d", peak, k*k)
	}
	if len(out) > 4*k {
		t.Fatalf("output has %d tuples; expected Θ(k)", len(out))
	}
	wco, err := in.RunInsideOut()
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(wco, out) {
		t.Fatal("InsideOut and hash join disagree on the skew instance")
	}
}

func TestAcyclicPathJoin(t *testing.T) {
	// R(x0,x1) ⋈ S(x1,x2): α-acyclic, both engines agree.
	in := &Instance{
		NumVars:  3,
		DomSizes: []int{3, 3, 3},
		Rels: []Rel{
			{Name: "R", Vars: []int{0, 1}, Rows: [][]int{{0, 1}, {1, 1}, {2, 0}}},
			{Name: "S", Vars: []int{1, 2}, Rows: [][]int{{1, 2}, {0, 0}}},
		},
	}
	got, err := in.RunInsideOut()
	if err != nil {
		t.Fatal(err)
	}
	want := in.BruteForceJoin()
	if !sameRows(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRelFactorUnsortedVars(t *testing.T) {
	// Relation with descending variable ids must reorder columns.
	in := &Instance{
		NumVars:  2,
		DomSizes: []int{2, 3},
		Rels: []Rel{
			{Name: "R", Vars: []int{1, 0}, Rows: [][]int{{2, 1}}}, // x1=2, x0=1
			{Name: "U", Vars: []int{0}, Rows: [][]int{{0}, {1}}},
		},
	}
	got, err := in.RunInsideOut()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], []int{1, 2}) {
		t.Fatalf("got %v, want [[1 2]]", got)
	}
}

func TestHashJoinRowArityValidation(t *testing.T) {
	in := &Instance{
		NumVars:  2,
		DomSizes: []int{2, 2},
		Rels:     []Rel{{Name: "R", Vars: []int{0, 1}, Rows: [][]int{{0}}}},
	}
	if _, err := in.ToQuery(); err == nil {
		t.Fatal("short row should fail compilation")
	}
}

func TestDuplicateRowsDeduped(t *testing.T) {
	in := &Instance{
		NumVars:  2,
		DomSizes: []int{2, 2},
		Rels: []Rel{
			{Name: "R", Vars: []int{0, 1}, Rows: [][]int{{0, 1}, {0, 1}, {1, 1}}},
			{Name: "S", Vars: []int{1}, Rows: [][]int{{1}, {1}}},
		},
	}
	got, err := in.RunInsideOut()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("join size = %d, want 2", len(got))
	}
	hj, _, err := in.RunHashJoin(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(hj, got) {
		t.Fatal("hash join and InsideOut disagree with duplicates")
	}
}
