// Package compose implements Section 8.5 of the paper: composing FAQ
// instances at the hypergraph level — each edge of an outer hypergraph H⁰
// is refined into an inner hypergraph H¹_e on the same vertices — and the
// width bounds that govern the composition:
//
//   - Proposition 8.5: fhtw(H⁰ ∘ H¹) ≤ fhtw(H⁰) · max_e ρ*(H¹_e),
//   - Lemma 8.7: the bound cannot be improved to fhtw(H⁰)·max_e fhtw(H¹_e)
//     (the star-of-stars family has an Ω(n) gap).
package compose

import (
	"fmt"

	"github.com/faqdb/faq/internal/hypergraph"
)

// Compose builds H⁰ ∘ H¹: for every edge e of h0, inner[e] supplies a
// hypergraph whose edges must be subsets of e; the composition keeps h0's
// vertex set with edge set ∪_e E(inner[e]).
func Compose(h0 *hypergraph.Hypergraph, inner []*hypergraph.Hypergraph) (*hypergraph.Hypergraph, error) {
	if len(inner) != len(h0.Edges) {
		return nil, fmt.Errorf("compose: %d inner hypergraphs for %d edges", len(inner), len(h0.Edges))
	}
	out := hypergraph.New(h0.N)
	for i, sub := range inner {
		for _, e := range sub.Edges {
			if !e.SubsetOf(h0.Edges[i]) {
				return nil, fmt.Errorf("compose: inner edge %s of block %d escapes outer edge %s",
					e, i, h0.Edges[i])
			}
			out.AddEdgeSet(e)
		}
	}
	return out, nil
}

// Proposition85Bound returns the right-hand side of Proposition 8.5:
// fhtw(H⁰) · max_e ρ*(vertices of e within H¹_e).  Exact and exponential in
// the sizes of the hypergraphs.
func Proposition85Bound(h0 *hypergraph.Hypergraph, inner []*hypergraph.Hypergraph) (float64, error) {
	if len(inner) != len(h0.Edges) {
		return 0, fmt.Errorf("compose: %d inner hypergraphs for %d edges", len(inner), len(h0.Edges))
	}
	w0 := hypergraph.NewWidthCalc(h0)
	fhtw0, _ := w0.FHTW()
	maxRho := 0.0
	for i, sub := range inner {
		wc := hypergraph.NewWidthCalc(sub)
		if r := wc.RhoStar(h0.Edges[i]); r > maxRho {
			maxRho = r
		}
	}
	return fhtw0 * maxRho, nil
}

// StarOfStars builds the Lemma 8.7 gap family on 2n vertices
// {a_1..a_n, b_1..b_n}: H⁰ has edges e_i = {a_1..a_n, b_i} (a star of big
// edges, fhtw(H⁰) = 1) and each H¹_{e_i} is the star centered at a_i with
// leaves {a_j}_{j≠i} ∪ {b_i} (fhtw = 1 each).  The composition contains the
// clique on {a_1..a_n}, so fhtw(H⁰ ∘ H¹) ≥ n/2 while the naive product of
// component widths is 1.
func StarOfStars(n int) (h0 *hypergraph.Hypergraph, inner []*hypergraph.Hypergraph) {
	nv := 2 * n
	h0 = hypergraph.New(nv)
	a := func(i int) int { return i }
	b := func(i int) int { return n + i }
	for i := 0; i < n; i++ {
		edge := make([]int, 0, n+1)
		for j := 0; j < n; j++ {
			edge = append(edge, a(j))
		}
		edge = append(edge, b(i))
		h0.AddEdge(edge...)
	}
	for i := 0; i < n; i++ {
		sub := hypergraph.New(nv)
		for j := 0; j < n; j++ {
			if j != i {
				sub.AddEdge(a(i), a(j))
			}
		}
		sub.AddEdge(a(i), b(i))
		inner = append(inner, sub)
	}
	return h0, inner
}
