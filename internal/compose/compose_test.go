package compose

import (
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/hypergraph"
)

func TestComposeValidation(t *testing.T) {
	h0 := hypergraph.NewWithEdges(3, []int{0, 1, 2})
	if _, err := Compose(h0, nil); err == nil {
		t.Fatal("length mismatch should fail")
	}
	sub := hypergraph.NewWithEdges(3, []int{0, 1})
	if _, err := Compose(h0, []*hypergraph.Hypergraph{sub}); err != nil {
		t.Fatalf("subset inner edge should pass: %v", err)
	}
	escape := hypergraph.NewWithEdges(3, []int{1, 2})
	if _, err := Compose(hypergraph.NewWithEdges(3, []int{0, 1}), []*hypergraph.Hypergraph{escape}); err == nil {
		t.Fatal("escaping inner edge should fail")
	}
}

// Proposition 8.5: fhtw of the composition never exceeds
// fhtw(H⁰)·max ρ*(H¹_e), on random compositions.
func TestProposition85(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(3)
		h0 := hypergraph.Random(rng, n, 2+rng.Intn(3), 4)
		var inner []*hypergraph.Hypergraph
		for _, e := range h0.Edges {
			verts := e.Elems()
			sub := hypergraph.New(n)
			// Random partition of the outer edge into inner edges, plus
			// singletons so every vertex stays covered.
			for _, v := range verts {
				sub.AddEdge(v)
			}
			if len(verts) >= 2 {
				for k := 0; k < 2; k++ {
					i, j := rng.Intn(len(verts)), rng.Intn(len(verts))
					sub.AddEdge(verts[i], verts[j])
				}
			}
			inner = append(inner, sub)
		}
		comp, err := Compose(h0, inner)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := Proposition85Bound(h0, inner)
		if err != nil {
			t.Fatal(err)
		}
		wc := hypergraph.NewWidthCalc(comp)
		got, _ := wc.FHTW()
		if got > bound+1e-6 {
			t.Fatalf("trial %d: fhtw(composition) = %v exceeds Proposition 8.5 bound %v", trial, got, bound)
		}
	}
}

// Lemma 8.7: the star-of-stars family has component widths 1 but composed
// width ≥ n/2 (it contains K_n), an unbounded gap.
func TestCompositionGap(t *testing.T) {
	for _, n := range []int{3, 4} {
		h0, inner := StarOfStars(n)
		w0 := hypergraph.NewWidthCalc(h0)
		if f, _ := w0.FHTW(); f != 1 {
			t.Fatalf("n=%d: fhtw(H⁰) = %v, want 1", n, f)
		}
		for i, sub := range inner {
			ws := hypergraph.NewWidthCalc(sub)
			// Restrict to the sub-hypergraph's touched vertices: stars have
			// fhtw 1.
			if f, _ := ws.FHTW(); f != 1 {
				t.Fatalf("n=%d: fhtw(H¹_%d) = %v, want 1", n, i, f)
			}
		}
		comp, err := Compose(h0, inner)
		if err != nil {
			t.Fatal(err)
		}
		wc := hypergraph.NewWidthCalc(comp)
		got, _ := wc.FHTW()
		if got < float64(n)/2-1e-6 {
			t.Fatalf("n=%d: composed fhtw = %v, want ≥ %v (K_n inside)", n, got, float64(n)/2)
		}
	}
}
