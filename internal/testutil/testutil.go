// Package testutil holds helpers for the smoke tests that run the cmd/ and
// examples/ binaries in-process: each test points os.Args at a tiny embedded
// input, captures stdout, and calls the package's main().
package testutil

import (
	"bytes"
	"io"
	"os"
	"testing"
)

// CaptureStdout runs f with os.Stdout redirected into a pipe and returns
// everything it printed.  The pipe is drained concurrently so f cannot block
// on a full pipe buffer.
func CaptureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("testutil: pipe: %v", err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	defer func() { // restore on panic too; double Close just errors harmlessly
		os.Stdout = old
		w.Close()
		r.Close()
	}()
	f()
	os.Stdout = old
	w.Close()
	return <-done
}

// WriteFile drops content into dir/name and returns the full path.
func WriteFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := dir + "/" + name
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("testutil: write %s: %v", path, err)
	}
	return path
}
