module github.com/faqdb/faq

go 1.24
