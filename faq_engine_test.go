// Public-surface tests for the Engine / PreparedQuery serving API:
// prepare-once-run-many correctness, context cancellation without goroutine
// leaks (run under -race in CI), Workers=1 ≡ Workers=N bit-identity through
// the prepared path, and default-engine stats for the compatibility
// wrappers.
package faq

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// engineEdges builds a deterministic sparse edge factor for triangle
// queries.
func engineEdges(rng *rand.Rand, d *Domain[float64], vars []int, nodes, edges int) *Factor[float64] {
	seen := map[[2]int]bool{}
	var tuples [][]int
	var values []float64
	for len(tuples) < edges {
		e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
		if seen[e] || e[0] == e[1] {
			continue
		}
		seen[e] = true
		tuples = append(tuples, []int{e[0], e[1]})
		values = append(values, 1)
	}
	f, err := NewFactor(d, vars, tuples, values, nil)
	if err != nil {
		panic(err)
	}
	return f
}

func engineTriangle(seed int64, nodes, edges int) *Query[float64] {
	rng := rand.New(rand.NewSource(seed))
	d := Float()
	return &Query[float64]{
		D: d, NVars: 3, DomSizes: []int{nodes, nodes, nodes}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(OpFloatSum()), SemiringAgg(OpFloatSum()), SemiringAgg(OpFloatSum()),
		},
		Factors: []*Factor[float64]{
			engineEdges(rng, d, []int{0, 1}, nodes, edges),
			engineEdges(rng, d, []int{1, 2}, nodes, edges),
			engineEdges(rng, d, []int{0, 2}, nodes, edges),
		},
	}
}

// TestEngineSolveEquivalence asserts Solve ≡ Engine.Prepare+Run
// bit-identically across worker counts, on a query with free variables so
// the whole output (not just a scalar) is compared.
func TestEngineSolveEquivalence(t *testing.T) {
	forceParallelBlocks(t)
	q := engineTriangle(99, 48, 400)
	q.NumFree = 1
	q.Aggs[0] = Free[float64]()

	want, _, err := Solve(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5} {
		eng := NewEngine[float64](EngineOptions{Workers: workers})
		prep, err := eng.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := prep.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Output.Equal(q.D, want.Output) {
			t.Fatalf("Workers=%d: Prepare+Run diverged from Solve:\n%v\n%v",
				workers, res.Output, want.Output)
		}
		eng.Close()
	}
}

// TestEnginePreparedWorkerBitIdentity runs the same prepared query at many
// worker counts and demands bit-identical outputs.
func TestEnginePreparedWorkerBitIdentity(t *testing.T) {
	forceParallelBlocks(t)
	q := engineTriangle(7, 40, 320)
	q.NumFree = 2
	q.Aggs[0] = Free[float64]()
	q.Aggs[1] = Free[float64]()

	var baseline *Result[float64]
	for _, workers := range []int{1, 2, 3, 8} {
		eng := NewEngine[float64](EngineOptions{Workers: workers})
		prep, err := eng.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := prep.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		eng.Close()
		if baseline == nil {
			baseline = res
			continue
		}
		if !res.Output.Equal(q.D, baseline.Output) {
			t.Fatalf("Workers=%d output differs from Workers=1", workers)
		}
	}
}

// TestEngineCancellationNoLeak cancels runs mid-join and checks that (a)
// the run reports the context error and (b) after Close the goroutine count
// returns to its baseline — no scan goroutine outlives a cancelled run.
func TestEngineCancellationNoLeak(t *testing.T) {
	forceParallelBlocks(t)
	baseline := runtime.NumGoroutine()

	eng := NewEngine[float64](EngineOptions{Workers: 4})
	q := engineTriangle(3, 1200, 36000) // big enough to outlive the cancel delay
	prep, err := eng.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-cancelled context: must fail immediately, before any scan.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prep.Run(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v", err)
	}

	// Mid-run cancellation: cancel shortly after the run starts.  On a fast
	// machine an individual run may still complete; retry until one is
	// actually interrupted.
	interrupted := false
	for attempt := 0; attempt < 20 && !interrupted; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(1+attempt) * time.Millisecond)
			cancel()
		}()
		_, err := prep.Run(ctx)
		switch {
		case err == nil:
			// completed before the cancel landed; try again
		case errors.Is(err, context.Canceled):
			interrupted = true
		default:
			t.Fatalf("cancelled run returned unexpected error %v", err)
		}
		cancel()
	}
	if !interrupted {
		t.Log("no run was interrupted mid-join (machine too fast); leak check still valid")
	}
	if st := eng.Stats(); interrupted && st.RunsCancelled == 0 {
		t.Fatalf("RunsCancelled not counted: %+v", st)
	}

	eng.Close()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > baseline {
		t.Fatalf("goroutines leaked after cancelled runs + Close: %d -> %d", baseline, after)
	}
}

// TestDefaultEngineStats checks that the compatibility wrappers and
// DefaultEngine share one runtime, and that preparing a repeated shape on
// it hits the plan cache.
func TestDefaultEngineStats(t *testing.T) {
	eng := DefaultEngine[float64]()
	before := eng.Stats()

	q := engineTriangle(11, 24, 120)
	prep, err := eng.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Prepare(engineTriangle(12, 24, 120)); err != nil { // same shape
		t.Fatal(err)
	}
	after := eng.Stats()
	if after.Prepared < before.Prepared+2 {
		t.Fatalf("Prepared did not advance: %+v -> %+v", before, after)
	}
	if after.PlanCacheHits < before.PlanCacheHits+1 {
		t.Fatalf("shape-identical Prepare missed the default cache: %+v -> %+v", before, after)
	}
	if after.Runs < before.Runs+1 {
		t.Fatalf("Runs did not advance: %+v -> %+v", before, after)
	}
	// Closing the default engine is a documented no-op: wrappers keep working.
	eng.Close()
	if _, _, err := Solve(engineTriangle(13, 16, 60), DefaultOptions()); err != nil {
		t.Fatalf("Solve after DefaultEngine.Close: %v", err)
	}
}

// TestPreparedRunWithFactorsPublic exercises the public data-refresh path:
// prepare once, swap factors, compare against the oracle.
func TestPreparedRunWithFactorsPublic(t *testing.T) {
	eng := NewEngine[float64](EngineOptions{Workers: 2})
	defer eng.Close()
	q := engineTriangle(21, 16, 80)
	prep, err := eng.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(30); seed < 35; seed++ {
		fresh := engineTriangle(seed, 16, 80)
		res, err := prep.RunWithFactors(context.Background(), fresh.Factors)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForceScalar(fresh)
		if err != nil {
			t.Fatal(err)
		}
		if res.Scalar() != want {
			t.Fatalf("seed %d: RunWithFactors = %v, brute force = %v", seed, res.Scalar(), want)
		}
	}
	st := eng.Stats()
	if st.Prepared != 1 || st.Runs != 5 {
		t.Fatalf("stats after 1 prepare + 5 refresh runs: %+v", st)
	}
}
