package faq

import (
	"context"
	"testing"

	"github.com/faqdb/faq/internal/obs"
)

// BenchmarkPreparedTraceOverhead times a warm prepared triangle run with
// tracing disabled (the production cache-hit path — the nil-trace hooks
// must cost no more than a context lookup, the PR 8 acceptance bound is a
// ≤1% regression) and enabled (the opt-in cost of building the span tree,
// one trace per Run).
func BenchmarkPreparedTraceOverhead(b *testing.B) {
	eng := NewEngine[float64](EngineOptions{})
	b.Cleanup(eng.Close)
	prep, err := eng.Prepare(preparedTriangle(20))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := prep.Run(context.Background()); err != nil { // warm the tries
		b.Fatal(err)
	}
	b.Run("untraced", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := prep.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := obs.NewTrace()
			if _, err := prep.Run(obs.WithTrace(context.Background(), tr)); err != nil {
				b.Fatal(err)
			}
			if tr.Finish() == nil {
				b.Fatal("trace lost")
			}
		}
	})
}
