package main

import (
	"os"
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/testutil"
)

// TestExperimentsSmoke runs the cheapest experiment (the Figures 2–6
// expression trees, pure printing) in-process via the -only filter.
func TestExperimentsSmoke(t *testing.T) {
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"experiments", "-only", "FIG"}
	out := testutil.CaptureStdout(t, main)
	if !strings.Contains(out, "## FIG-trees") || !strings.Contains(out, "expression tree") {
		t.Fatalf("experiments FIG-trees output unexpected:\n%s", out)
	}
}
