// experiments regenerates every evaluation artifact of the paper as
// console tables: the eight rows of Table 1 (InsideOut vs the prior
// baseline on matched workloads), the Example 5.6 ordering experiment, the
// Section 8.3 β-acyclic SAT/#SAT scaling, the Section 8.5 composition gap,
// and the Figures 2–6 expression trees.  EXPERIMENTS.md records one full
// run.
//
// Usage:
//
//	experiments [-only substring] [-seed n] [-workers n]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	faq "github.com/faqdb/faq"
	"github.com/faqdb/faq/internal/cnf"
	"github.com/faqdb/faq/internal/compose"
	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/hypergraph"
	"github.com/faqdb/faq/internal/logicq"
	"github.com/faqdb/faq/internal/matrixops"
	"github.com/faqdb/faq/internal/pgm"
	"github.com/faqdb/faq/internal/reljoin"
)

var (
	only    = flag.String("only", "", "run only experiments whose id contains this substring")
	seed    = flag.Int64("seed", 1, "workload seed")
	workers = flag.Int("workers", 0, "worker-pool size for PAR-executor (0 = GOMAXPROCS, 1 = sequential)")
)

func main() {
	flag.Parse()
	for _, e := range experiments {
		if *only != "" && !strings.Contains(e.id, *only) {
			continue
		}
		fmt.Printf("\n## %s — %s\n\n", e.id, e.title)
		e.run()
	}
}

type experiment struct {
	id    string
	title string
	run   func()
}

var experiments = []experiment{
	{"T1.1-sharpqcq", "#QCQ: InsideOut vs naive enumeration", runSharpQCQ},
	{"T1.2-qcq", "QCQ: Chen–Dalmau family, faqw ≤ 2 vs prefix width n+1", runQCQ},
	{"T1.3-sharpcq", "#CQ: counting over free variables", runSharpCQ},
	{"T1.4-joins", "Joins: triangle on the skew instance, WCOJ vs binary plans", runJoins},
	{"T1.5-marginal", "Marginal: cycle model, fhtw-planned elimination vs enumeration", runMarginal},
	{"T1.6-map", "MAP: grid model, max-product", runMAP},
	{"T1.7-mcm", "MCM: FAQ planner vs textbook DP", runMCM},
	{"T1.8-dft", "DFT: FAQ-FFT O(N log N) vs naive O(N²)", runDFT},
	{"EX5.6-orderings", "Example 5.6: width-2 vs width-1 equivalent orderings", runExample56},
	{"S8.3-sat", "β-acyclic SAT: NEO resolution vs DPLL (peak clauses)", runSAT},
	{"S8.3-sharpsat", "β-acyclic #SAT: Theorem 8.4 elimination vs 2^n enumeration", runSharpSAT},
	{"S8.5-gap", "Composition: Lemma 8.7 star-of-stars width gap", runGap},
	{"FIG-trees", "Figures 2–6: expression trees", runTrees},
	{"PAR-executor", "Parallel executor: sequential vs block-parallel worker pool", runParallel},
	{"ENG-prepared", "Engine: prepare-once-run-many amortization vs per-call Solve", runPrepared},
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func row(cols ...interface{}) {
	parts := make([]string, len(cols))
	for i, c := range cols {
		switch v := c.(type) {
		case time.Duration:
			parts[i] = fmt.Sprintf("%12s", v.Round(time.Microsecond))
		case float64:
			parts[i] = fmt.Sprintf("%12.4g", v)
		default:
			parts[i] = fmt.Sprintf("%12v", v)
		}
	}
	fmt.Println("  " + strings.Join(parts, " | "))
}

// --- Table 1 ---------------------------------------------------------------

func starQuery(rng *rand.Rand, dom int, quants []logicq.Quantifier) *logicq.Query {
	rel := func(name string) *logicq.Relation {
		r := &logicq.Relation{Name: name, Arity: 2}
		seen := map[[2]int]bool{}
		for len(seen) < dom*dom*3/4 {
			e := [2]int{rng.Intn(dom), rng.Intn(dom)}
			if !seen[e] {
				seen[e] = true
				r.Add(e[0], e[1])
			}
		}
		return r
	}
	return &logicq.Query{
		NumVars: 4, NumFree: 1,
		DomSizes: []int{dom, dom, dom, dom},
		Quants:   quants,
		Atoms: []logicq.Atom{
			{Rel: rel("R1"), Vars: []int{0, 1}},
			{Rel: rel("R2"), Vars: []int{0, 2}},
			{Rel: rel("R3"), Vars: []int{2, 3}},
		},
	}
}

func runSharpQCQ() {
	row("dom", "insideout", "naive", "count")
	for _, dom := range []int{8, 16, 24} {
		q := starQuery(rand.New(rand.NewSource(*seed)), dom, []logicq.Quantifier{logicq.ForAll, logicq.Exists, logicq.ForAll})
		var got int64
		tIO := timeIt(func() { got, _ = logicq.CountQCQ(q) })
		var want int64
		tNaive := timeIt(func() { want, _ = logicq.NaiveCount(q) })
		check(got == want, "#QCQ mismatch")
		row(dom, tIO, tNaive, got)
	}
}

func runQCQ() {
	row("n", "insideout", "naive", "faqw", "prefixw")
	for _, n := range []int{3, 4, 5} {
		dom := 4
		s := &logicq.Relation{Name: "S", Arity: n}
		tuple := make([]int, n)
		var fill func(int)
		fill = func(i int) {
			if i == n {
				s.Add(tuple...)
				return
			}
			for v := 0; v < dom; v++ {
				tuple[i] = v
				fill(i + 1)
			}
		}
		fill(0)
		r := &logicq.Relation{Name: "R", Arity: 2}
		for a := 0; a < dom; a++ {
			r.Add(a, (a+1)%dom)
		}
		q := logicq.ChenDalmau(n, s, r, dom)
		var holds bool
		tIO := timeIt(func() {
			out, _ := logicq.SolveQCQ(q)
			holds = out.Size() > 0
		})
		var naive bool
		tNaive := timeIt(func() { naive, _ = logicq.NaiveBool(q) })
		check(holds == naive, "QCQ mismatch")
		cq, _ := logicq.CompileQCQ(q)
		shape := cq.Shape()
		plan, _ := faq.PlanExact(shape, faq.NewWidthCalc(shape.H))
		row(n, tIO, tNaive, plan.Width, n+1)
	}
}

func runSharpCQ() {
	row("dom", "insideout", "naive", "count")
	for _, dom := range []int{8, 16, 24} {
		q := starQuery(rand.New(rand.NewSource(*seed+1)), dom, []logicq.Quantifier{logicq.Exists, logicq.Exists, logicq.Exists})
		var got int64
		tIO := timeIt(func() { got, _ = logicq.CountCQ(q) })
		var want int64
		tNaive := timeIt(func() { want, _ = logicq.NaiveCount(q) })
		check(got == want, "#CQ mismatch")
		row(dom, tIO, tNaive, got)
	}
}

func runJoins() {
	row("N", "insideout", "hashjoin", "peak-intermediate", "output")
	for _, n := range []int{128, 512, 2048} {
		edges, dom := reljoin.SkewTriangleEdges(n)
		in := reljoin.Triangle(dom, edges)
		var out [][]int
		tIO := timeIt(func() { out, _ = in.RunInsideOut() })
		var peak int
		var hj [][]int
		tHJ := timeIt(func() { hj, peak, _ = in.RunHashJoin(nil) })
		check(len(out) == len(hj), "join mismatch")
		row(n, tIO, tHJ, peak, len(out))
	}
}

func runMarginal() {
	row("dom", "insideout", "bruteforce", "Z")
	for _, dom := range []int{4, 8, 12} {
		m := pgm.Cycle(rand.New(rand.NewSource(*seed+2)), 6, dom)
		var z float64
		tIO := timeIt(func() { z, _ = m.Partition() })
		tBF := time.Duration(0)
		if dom <= 8 {
			tBF = timeIt(func() { _, _ = m.MarginalBrute(nil) })
		}
		row(dom, tIO, tBF, z)
	}
}

func runMAP() {
	row("dom", "insideout", "bruteforce", "MAP")
	for _, dom := range []int{3, 4, 8} {
		m := pgm.Grid(rand.New(rand.NewSource(*seed+3)), 3, 3, dom)
		var v float64
		tIO := timeIt(func() { v, _ = m.MAPValue() })
		tBF := time.Duration(0)
		if dom <= 4 {
			var w float64
			tBF = timeIt(func() { w, _ = m.MAPBrute() })
			check(approx(v, w), "MAP mismatch")
		}
		row(dom, tIO, tBF, v)
	}
}

func runMCM() {
	rng := rand.New(rand.NewSource(*seed + 4))
	dims := []int{24, 4, 32, 6, 28, 8}
	ms := make([]*matrixops.Matrix, len(dims)-1)
	for i := range ms {
		ms[i] = matrixops.NewMatrix(dims[i], dims[i+1])
		for j := range ms[i].Data {
			ms[i].Data[j] = rng.Float64()
		}
	}
	var dpCost, dpOps int64
	tDP := timeIt(func() { _, dpCost, dpOps, _ = matrixops.ChainDP(ms) })
	var plan *core.Plan
	tFAQ := timeIt(func() { _, plan, _ = matrixops.ChainFAQ(ms) })
	row("dims", "faq", "dp", "dp-cost")
	row(fmt.Sprint(dims), tFAQ, tDP, dpCost)
	fmt.Printf("  planner σ = %v (width %.2f); DP performed %d multiplies\n",
		plan.Order, plan.Width, dpOps)
}

func runDFT() {
	row("N", "faq-fft", "naive", "max-err")
	for _, m := range []int{8, 10, 12} {
		n := 1 << m
		rng := rand.New(rand.NewSource(*seed + 5))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64(), 0)
		}
		var fast []complex128
		tFAQ := timeIt(func() { fast, _ = matrixops.FFTViaFAQ(x, 2, m) })
		var slow []complex128
		tNaive := timeIt(func() { slow = matrixops.NaiveDFT(x) })
		maxErr := 0.0
		for i := range slow {
			if d := absC(fast[i] - slow[i]); d > maxErr {
				maxErr = d
			}
		}
		row(n, tFAQ, tNaive, maxErr)
	}
}

// --- Example 5.6 -------------------------------------------------------------

func runExample56() {
	eng := faq.NewEngine[float64](faq.EngineOptions{})
	defer eng.Close()
	ctx := context.Background()
	row("N", "σ-expression (width 2)", "σ-paper (width 1)")
	for _, n := range []int{64, 128, 256} {
		q := example56Skew(rand.New(rand.NewSource(*seed+6)), n)
		pExpr, err := eng.PrepareOrder(q, []int{0, 1, 2, 3, 4, 5}, faq.DefaultOptions())
		check(err == nil, "Example 5.6 prepare (expression)")
		pPaper, err := eng.PrepareOrder(q, []int{4, 0, 1, 2, 3, 5}, faq.DefaultOptions())
		check(err == nil, "Example 5.6 prepare (paper)")
		var a, b *faq.Result[float64]
		tExpr := timeIt(func() { a, _ = pExpr.Run(ctx) })
		tPaper := timeIt(func() { b, _ = pPaper.Run(ctx) })
		check(approx(a.Scalar(), b.Scalar()), "Example 5.6 mismatch")
		row(n, tExpr, tPaper)
	}
}

// example56Skew builds Example 5.6 with the adversarial skew: ψ{0,4} and
// ψ{1,4} concentrate on a single x4 value, so the width-2 expression order
// materializes an N²-row intermediate when it eliminates x4, while the
// paper's width-1 ordering (4,0,1,2,3,5) stays linear.
func example56Skew(rng *rand.Rand, n int) *faq.Query[float64] {
	d := faq.Float()
	skew := func(vars []int) *faq.Factor[float64] {
		var tuples [][]int
		var values []float64
		for i := 0; i < n; i++ {
			tuples = append(tuples, []int{i, 0})
			values = append(values, 1)
		}
		f, _ := faq.NewFactor(d, vars, tuples, values, nil)
		return f
	}
	random3 := func(vars []int) *faq.Factor[float64] {
		seen := map[[3]int]bool{}
		var tuples [][]int
		var values []float64
		for len(tuples) < n {
			t := [3]int{rng.Intn(n), rng.Intn(n), rng.Intn(n)}
			if seen[t] {
				continue
			}
			seen[t] = true
			tuples = append(tuples, []int{t[0], t[1], t[2]})
			values = append(values, 1)
		}
		f, _ := faq.NewFactor(d, vars, tuples, values, nil)
		return f
	}
	return &faq.Query[float64]{
		D: d, NVars: 6, DomSizes: []int{n, n, n, n, n, n}, NumFree: 0,
		Aggs: []faq.Aggregate[float64]{
			faq.SemiringAgg(faq.OpFloatMax()), faq.SemiringAgg(faq.OpFloatMax()),
			faq.ProductAgg[float64](), faq.SemiringAgg(faq.OpFloatSum()),
			faq.SemiringAgg(faq.OpFloatMax()), faq.SemiringAgg(faq.OpFloatMax()),
		},
		Factors: []*faq.Factor[float64]{
			skew([]int{0, 4}), skew([]int{1, 4}),
			random3([]int{0, 2, 3}), random3([]int{1, 2, 5}),
		},
		IdempotentInputs: true,
	}
}

// --- Section 8.3 --------------------------------------------------------------

func runSAT() {
	row("n", "neo-resolution", "dpll", "peak/input")
	for _, n := range []int{32, 64, 128} {
		f := cnf.RandomInterval(rand.New(rand.NewSource(*seed+7)), n, n*3/2, 5)
		order, _ := f.NestedEliminationOrder()
		var sat1, sat2 bool
		var peak int
		tNEO := timeIt(func() { sat1, peak = f.SolveDirectional(order) })
		tDPLL := timeIt(func() { sat2 = f.SolveDPLL() })
		check(sat1 == sat2, "SAT mismatch")
		row(n, tNEO, tDPLL, fmt.Sprintf("%d/%d", peak, len(f.Clauses)))
	}
}

func runSharpSAT() {
	row("n", "wsat-elim", "enumerate", "models")
	for _, n := range []int{16, 20, 64, 128} {
		f := cnf.RandomInterval(rand.New(rand.NewSource(*seed+8)), n, n*3/4, 4)
		var count string
		tElim := timeIt(func() {
			c, err := f.CountBetaAcyclic()
			check(err == nil, "elimination failed")
			count = c.String()
		})
		tEnum := time.Duration(0)
		if n <= 20 {
			var want string
			tEnum = timeIt(func() { want = f.CountAssignmentsBrute().String() })
			check(count == want, "#SAT mismatch")
		}
		row(n, tElim, tEnum, count)
	}
}

// --- Section 8.5 ---------------------------------------------------------------

func runGap() {
	row("n", "fhtw(H0)", "max fhtw(H1)", "fhtw(H0∘H1)", "Prop8.5 bound")
	for _, n := range []int{3, 4, 5} {
		h0, inner := compose.StarOfStars(n)
		comp, _ := compose.Compose(h0, inner)
		w0 := hypergraph.NewWidthCalc(h0)
		f0, _ := w0.FHTW()
		maxInner := 0.0
		for _, sub := range inner {
			wi := hypergraph.NewWidthCalc(sub)
			fi, _ := wi.FHTW()
			if fi > maxInner {
				maxInner = fi
			}
		}
		wc := hypergraph.NewWidthCalc(comp)
		fc, _ := wc.FHTW()
		bound, _ := compose.Proposition85Bound(h0, inner)
		row(n, f0, maxInner, fc, bound)
	}
}

// --- Figures --------------------------------------------------------------------

func runTrees() {
	name := func(v int) string { return fmt.Sprintf("x%d", v+1) }
	ex62 := shape(7,
		[]string{"op:sum", "op:sum", "op:max", "op:sum", "op:sum", "op:max", "op:max"},
		[][]int{{0, 1}, {0, 2, 4}, {0, 3}, {1, 3, 5}, {1, 6}, {2, 6}}, false)
	fmt.Println("Example 6.2 (Figures 2–3):")
	fmt.Print(core.BuildExprTreeScoped(ex62).Pretty(name))
	ex619 := shape(8,
		[]string{"op:max", "op:max", "op:sum", "op:sum", "⊗", "op:max", "⊗", "op:max"},
		[][]int{{0, 2}, {1, 3}, {2, 3}, {0, 4}, {0, 5}, {1, 5}, {1, 4, 6}, {0, 5, 6}, {1, 6, 7}}, true)
	fmt.Println("Example 6.19 (Figures 4–6, scoped):")
	fmt.Print(core.BuildExprTreeScoped(ex619).Pretty(name))
	fmt.Println("Example 6.19 (flat-rewriting sound):")
	fmt.Print(core.BuildExprTree(ex619).Pretty(name))
}

func shape(n int, tags []string, edges [][]int, idem bool) *core.Shape {
	s := &core.Shape{
		H: hypergraph.NewWithEdges(n, edges...), N: n,
		Tags: tags, IdempotentInputs: idem,
	}
	for i, t := range tags {
		if t == "⊗" {
			s.Product.Add(i)
		}
		if t == "op:sum" {
			s.NonClosed.Add(i)
		}
	}
	return s
}

func check(ok bool, msg string) {
	if !ok {
		panic(msg)
	}
}

func approx(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= 1e-9*scale || diff == 0
}

func absC(c complex128) float64 {
	re, im := real(c), imag(c)
	return re*re + im*im
}

// --- Parallel executor ------------------------------------------------------

// triangleWorkload builds the random triangle-count query used by the
// executor and engine experiments.
func triangleWorkload(rng *rand.Rand, nodes, edges int) *faq.Query[float64] {
	d := faq.Float()
	seen := map[[2]int]bool{}
	var tuples [][]int
	var values []float64
	for len(tuples) < edges {
		e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
		if seen[e] || e[0] == e[1] {
			continue
		}
		seen[e] = true
		tuples = append(tuples, []int{e[0], e[1]})
		values = append(values, 1)
	}
	mk := func(vars []int) *faq.Factor[float64] {
		f, err := faq.NewFactor(d, vars, tuples, values, nil)
		check(err == nil, "triangle factor")
		return f
	}
	return &faq.Query[float64]{
		D: d, NVars: 3, DomSizes: []int{nodes, nodes, nodes}, NumFree: 0,
		Aggs: []faq.Aggregate[float64]{
			faq.SemiringAgg(faq.OpFloatSum()),
			faq.SemiringAgg(faq.OpFloatSum()),
			faq.SemiringAgg(faq.OpFloatSum()),
		},
		Factors: []*faq.Factor[float64]{mk([]int{0, 1}), mk([]int{1, 2}), mk([]int{0, 2})},
	}
}

// runParallel times the same triangle-count query on a sequential engine
// (Workers=1) and a pooled engine (the -workers flag; 0 means GOMAXPROCS),
// checking that both return the identical count.  Both queries are prepared
// once with the expression order, so the comparison is pure executor time.
func runParallel() {
	pool := runtime.GOMAXPROCS(0)
	if *workers > 0 {
		pool = *workers
	}
	fmt.Printf("  pool size %d (GOMAXPROCS %d)\n", pool, runtime.GOMAXPROCS(0))
	engSeq := faq.NewEngine[float64](faq.EngineOptions{Workers: 1})
	defer engSeq.Close()
	engPool := faq.NewEngine[float64](faq.EngineOptions{Workers: pool})
	defer engPool.Close()
	ctx := context.Background()
	row("nodes", "sequential", "pool", "speedup", "triangles")
	for _, nodes := range []int{1000, 2000, 4000} {
		q := triangleWorkload(rand.New(rand.NewSource(*seed)), nodes, nodes*16)
		order := []int{0, 1, 2}
		pSeq, err := engSeq.PrepareOrder(q, order, faq.DefaultOptions())
		check(err == nil, "sequential prepare")
		pPool, err := engPool.PrepareOrder(q, order, faq.DefaultOptions())
		check(err == nil, "pool prepare")
		var seqRes, poolRes *faq.Result[float64]
		tSeq := timeIt(func() {
			r, err := pSeq.Run(ctx)
			check(err == nil, "sequential insideout")
			seqRes = r
		})
		tPool := timeIt(func() {
			r, err := pPool.Run(ctx)
			check(err == nil, "pool insideout")
			poolRes = r
		})
		check(seqRes.Scalar() == poolRes.Scalar(), "executor results diverged")
		row(nodes, tSeq, tPool, float64(tSeq)/float64(tPool), seqRes.Scalar())
	}
}

// runPrepared is the serving-amortization experiment: the same triangle
// shape is answered repeatedly over fresh edge sets, once with per-call
// Solve (replanning every time) and once with Engine.Prepare +
// RunWithFactors (planning once, swapping data).  The delta is the
// Section 6–7 planning cost amortized away by the plan cache.
func runPrepared() {
	const runs = 8
	eng := faq.NewEngine[float64](faq.EngineOptions{Workers: *workers})
	defer eng.Close()
	ctx := context.Background()
	row("nodes", "solve×"+fmt.Sprint(runs), "prepared×"+fmt.Sprint(runs), "speedup", "checksum")
	for _, nodes := range []int{500, 1000, 2000} {
		datasets := make([]*faq.Query[float64], runs)
		for i := range datasets {
			datasets[i] = triangleWorkload(rand.New(rand.NewSource(*seed+int64(i))), nodes, nodes*16)
		}
		var solveSum float64
		tSolve := timeIt(func() {
			for _, q := range datasets {
				res, _, err := faq.Solve(q, faq.DefaultOptions())
				check(err == nil, "solve")
				solveSum += res.Scalar()
			}
		})
		var prepSum float64
		tPrep := timeIt(func() {
			prep, err := eng.Prepare(datasets[0])
			check(err == nil, "prepare")
			for _, q := range datasets {
				res, err := prep.RunWithFactors(ctx, q.Factors)
				check(err == nil, "prepared run")
				prepSum += res.Scalar()
			}
		})
		check(solveSum == prepSum, "prepared runs diverged from Solve")
		row(nodes, tSolve, tPrep, float64(tSolve)/float64(tPrep), prepSum)
	}
	st := eng.Stats()
	fmt.Printf("  engine: %d prepared, %d plan hits, %d misses, %d runs\n",
		st.Prepared, st.PlanCacheHits, st.PlanCacheMisses, st.Runs)
}
