// satcli decides satisfiability or counts models of a DIMACS CNF file,
// using the β-acyclic fast paths of Section 8.3 (Theorems 8.3/8.4) when the
// clause hypergraph admits a nested elimination order, and falling back to
// DPLL / reporting intractability otherwise.
//
// Usage:
//
//	satcli [-count] [-faq] [-workers n] [file.cnf]    (stdin when no file)
//
// -count -faq routes #SAT through the generic FAQ engine instead of the
// β-acyclic fast path: the formula compiles to a counting-semiring query
// (Table 1 row #SAT), the engine plans an elimination order, and InsideOut
// counts the models on the engine's worker pool.  It works on arbitrary
// clause hypergraphs within the planner's width limits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"github.com/faqdb/faq/internal/cnf"
	"github.com/faqdb/faq/internal/core"
)

func main() {
	count := flag.Bool("count", false, "count satisfying assignments (#SAT)")
	useFAQ := flag.Bool("faq", false, "with -count: count via the FAQ engine instead of the beta-acyclic fast path")
	workers := flag.Int("workers", 0, "FAQ engine worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "satcli: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	if *useFAQ && !*count {
		fmt.Fprintln(os.Stderr, "satcli: -faq requires -count")
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	f, err := cnf.ParseDIMACS(r)
	if err != nil {
		log.Fatal(err)
	}

	order, beta := f.NestedEliminationOrder()
	fmt.Fprintf(os.Stderr, "c %d variables, %d clauses, beta-acyclic: %v\n",
		f.NumVars, len(f.Clauses), beta)

	if *count {
		if *useFAQ {
			if f.NumVars > 62 {
				log.Fatalf("satcli: -faq counts in int64 (max 2^62 models); formula has %d variables", f.NumVars)
			}
			eng := core.NewEngine[int64](core.EngineOptions{Workers: *workers})
			defer eng.Close()
			prep, err := eng.Prepare(f.FAQQuery())
			if err != nil {
				log.Fatal(err)
			}
			res, err := prep.Run(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "c faq plan: %s width %.3f\n",
				prep.Plan().Method, prep.Plan().Width)
			fmt.Printf("s mc %d\n", res.Scalar())
			return
		}
		if beta {
			n, err := f.CountBetaAcyclic()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("s mc %s\n", n)
			return
		}
		if f.NumVars <= 28 {
			fmt.Fprintln(os.Stderr, "c not beta-acyclic; falling back to enumeration")
			fmt.Printf("s mc %s\n", f.CountAssignmentsBrute())
			return
		}
		log.Fatal("formula is not beta-acyclic and too large to enumerate")
	}

	var sat bool
	if beta {
		sat, _ = f.SolveDirectional(order)
	} else {
		sat = f.SolveDPLL()
	}
	if sat {
		fmt.Println("s SATISFIABLE")
	} else {
		fmt.Println("s UNSATISFIABLE")
	}
}
