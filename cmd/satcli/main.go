// satcli decides satisfiability or counts models of a DIMACS CNF file,
// using the β-acyclic fast paths of Section 8.3 (Theorems 8.3/8.4) when the
// clause hypergraph admits a nested elimination order, and falling back to
// DPLL / reporting intractability otherwise.
//
// Usage:
//
//	satcli [-count] [file.cnf]    (stdin when no file)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"github.com/faqdb/faq/internal/cnf"
)

func main() {
	count := flag.Bool("count", false, "count satisfying assignments (#SAT)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	f, err := cnf.ParseDIMACS(r)
	if err != nil {
		log.Fatal(err)
	}

	order, beta := f.NestedEliminationOrder()
	fmt.Fprintf(os.Stderr, "c %d variables, %d clauses, beta-acyclic: %v\n",
		f.NumVars, len(f.Clauses), beta)

	if *count {
		if beta {
			n, err := f.CountBetaAcyclic()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("s mc %s\n", n)
			return
		}
		if f.NumVars <= 28 {
			fmt.Fprintln(os.Stderr, "c not beta-acyclic; falling back to enumeration")
			fmt.Printf("s mc %s\n", f.CountAssignmentsBrute())
			return
		}
		log.Fatal("formula is not beta-acyclic and too large to enumerate")
	}

	var sat bool
	if beta {
		sat, _ = f.SolveDirectional(order)
	} else {
		sat = f.SolveDPLL()
	}
	if sat {
		fmt.Println("s SATISFIABLE")
	} else {
		fmt.Println("s UNSATISFIABLE")
	}
}
