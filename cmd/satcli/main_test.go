package main

import (
	"os"
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/testutil"
)

// TestSatcliSmoke counts the models of a tiny embedded DIMACS formula:
// (x1 ∨ ¬x2) ∧ (x2 ∨ x3) has 4 satisfying assignments.
// main registers its flags on the global FlagSet, so it may run only once
// per test process.
func TestSatcliSmoke(t *testing.T) {
	cnfFile := testutil.WriteFile(t, t.TempDir(), "tiny.cnf",
		"c smoke test\np cnf 3 2\n1 -2 0\n2 3 0\n")
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"satcli", "-count", cnfFile}
	out := testutil.CaptureStdout(t, main)
	if !strings.Contains(out, "s mc 4") {
		t.Fatalf("satcli model count wrong, want 's mc 4':\n%s", out)
	}
}
