// doccheck is the documentation gate of make lint: it fails when an
// exported identifier in the given package directories lacks a doc
// comment.  The public API surface (the root faq package, internal/server
// and internal/wire) is held to "every exported symbol documented" — the
// godoc half of the wire-protocol contract docs/PROTOCOL.md describes.
//
// Usage:
//
//	doccheck [package-dir ...]     # default: .
//
// Rules: top-level exported functions, methods on exported receivers,
// and exported types need their own doc comment; const/var/type groups
// are satisfied by a doc comment on the group or on the individual spec
// (a trailing line comment counts for grouped consts/vars, matching
// common Go practice for enum-style blocks).  _test.go files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	var missing []string
	for _, dir := range dirs {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(1)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		for _, m := range missing {
			fmt.Println(m)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d exported symbol(s) lack doc comments\n", len(missing))
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file in dir (no recursion — pass
// sub-packages explicitly) and returns one line per undocumented exported
// symbol.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s lacks a doc comment",
			filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, report)
				case *ast.GenDecl:
					checkGen(d, report)
				}
			}
		}
	}
	return missing, nil
}

// checkFunc flags exported functions and exported methods on exported
// receiver types.
func checkFunc(d *ast.FuncDecl, report func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind, name := "function", d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return // method on an unexported type: internal surface
		}
		kind, name = "method", recv+"."+d.Name.Name
	}
	report(d.Pos(), kind, name)
}

// receiverName unwraps *T, T[P] and *T[P] receivers to T.
func receiverName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// checkGen flags exported names in type/const/var declarations.  A doc
// comment on the group covers its members; an individual spec may instead
// carry its own doc or line comment.
func checkGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	kind := map[token.Token]string{token.TYPE: "type", token.CONST: "const", token.VAR: "var"}[d.Tok]
	if kind == "" {
		return
	}
	groupDoc := d.Doc != nil
	for _, s := range d.Specs {
		switch spec := s.(type) {
		case *ast.TypeSpec:
			if spec.Name.IsExported() && !groupDoc && spec.Doc == nil && spec.Comment == nil {
				report(spec.Pos(), kind, spec.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || spec.Doc != nil || spec.Comment != nil {
				continue
			}
			for _, n := range spec.Names {
				if n.IsExported() {
					report(n.Pos(), kind, n.Name)
				}
			}
		}
	}
}
