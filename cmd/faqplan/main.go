// faqplan prints the ordering-theory pipeline of Figure 1 for a query:
// hypergraph → expression tree (compartmentalization + compression,
// Figures 2–6) → precedence poset → linear extensions → planned orderings
// and their FAQ-widths.
//
// Usage:
//
//	faqplan -example 6.2|6.19|5.6|chen-dalmau
//	faqplan -spec query.faq
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/hypergraph"
	"github.com/faqdb/faq/internal/spec"
)

func main() {
	example := flag.String("example", "", "built-in example: 6.2, 6.19, 5.6 or chen-dalmau")
	specFile := flag.String("spec", "", "query specification file (see internal/spec)")
	flag.Parse()

	var s *core.Shape
	var name func(int) string
	var specQuery *core.Query[float64]
	switch {
	case *specFile != "":
		f, err := os.Open(*specFile)
		if err != nil {
			log.Fatal(err)
		}
		q, err := spec.Parse(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		specQuery = q
		s = q.Shape()
		name = q.VarName
	case *example != "":
		s = builtinExample(*example)
		name = func(v int) string { return fmt.Sprintf("x%d", v+1) } // paper is 1-indexed
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("hypergraph: %s\n", s.H)
	fmt.Printf("tags:       %v\n", s.Tags)

	scoped := core.BuildExprTreeScoped(s)
	fmt.Println("\nexpression tree (Definition 6.18, as in Figures 2–6):")
	fmt.Print(scoped.Pretty(name))
	sound := core.BuildExprTree(s)
	if sound.Render() != scoped.Render() {
		fmt.Println("expression tree (flat-rewriting sound form; non-closed Σ anchored):")
		fmt.Print(sound.Pretty(name))
	}

	poset, err := core.NewPoset(sound, s.N)
	if err != nil {
		log.Fatal(err)
	}
	rels := 0
	for u := 0; u < s.N; u++ {
		for v := 0; v < s.N; v++ {
			if poset.Less(u, v) {
				rels++
			}
		}
	}
	fmt.Printf("\nprecedence poset: %d ordered pairs, ", rels)
	fmt.Printf("%d linear extensions (capped at 10000)\n", poset.CountLinearExtensions(10000))

	wc := hypergraph.NewWidthCalc(s.H)
	fmt.Println("\nplans:")
	if p, err := core.PlanExpression(s, wc); err == nil {
		printPlan(p, name)
	}
	if s.N <= 18 {
		if p, err := core.PlanExact(s, wc); err == nil {
			printPlan(p, name)
		}
	}
	if p, err := core.PlanGreedy(s, wc); err == nil {
		printPlan(p, name)
	}
	if p, err := core.PlanApprox(s, wc, core.GreedyDecomp); err == nil {
		printPlan(p, name)
	}
	fhtw, _ := wc.FHTW()
	fmt.Printf("\nfhtw(H) = %.3f (lower bound when all orderings are equivalent)\n", fhtw)

	// For an executable spec, show what an Engine would serve: the plan a
	// Prepare caches and the cache behavior of a repeated shape.
	if specQuery != nil {
		eng := core.NewEngine[float64](core.EngineOptions{Workers: 1})
		defer eng.Close()
		prep, err := eng.Prepare(specQuery)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := eng.Prepare(specQuery); err != nil { // same shape: cache hit
			log.Fatal(err)
		}
		st := eng.Stats()
		fmt.Printf("\nengine: Prepare caches %-12s width %.3f  σ = %s\n",
			prep.Plan().Method, prep.Plan().Width, core.OrderString(prep.Plan().Order, name))
		fmt.Printf("engine: repeated shape -> %d plan miss, %d plan hit\n",
			st.PlanCacheMisses, st.PlanCacheHits)
	}
}

func printPlan(p *core.Plan, name func(int) string) {
	fmt.Printf("  %-12s width %.3f  σ = %s\n", p.Method, p.Width, core.OrderString(p.Order, name))
}

func builtinExample(which string) *core.Shape {
	mk := func(n int, tags []string, edges [][]int, idem bool) *core.Shape {
		s := &core.Shape{
			H: hypergraph.NewWithEdges(n, edges...), N: n,
			Tags: tags, IdempotentInputs: idem,
		}
		for i, t := range tags {
			if t == "⊗" {
				s.Product.Add(i)
			}
			if t == "op:sum" {
				s.NonClosed.Add(i)
			}
		}
		return s
	}
	switch which {
	case "6.2":
		return mk(7,
			[]string{"op:sum", "op:sum", "op:max", "op:sum", "op:sum", "op:max", "op:max"},
			[][]int{{0, 1}, {0, 2, 4}, {0, 3}, {1, 3, 5}, {1, 6}, {2, 6}}, false)
	case "6.19":
		return mk(8,
			[]string{"op:max", "op:max", "op:sum", "op:sum", "⊗", "op:max", "⊗", "op:max"},
			[][]int{{0, 2}, {1, 3}, {2, 3}, {0, 4}, {0, 5}, {1, 5}, {1, 4, 6}, {0, 5, 6}, {1, 6, 7}}, true)
	case "5.6":
		return mk(6,
			[]string{"op:max", "op:max", "⊗", "op:sum", "op:max", "op:max"},
			[][]int{{0, 4}, {1, 4}, {0, 2, 3}, {1, 2, 5}}, true)
	case "chen-dalmau":
		n := 4
		tags := make([]string, n+1)
		var edges [][]int
		var sEdge []int
		for i := 0; i < n; i++ {
			tags[i] = "⊗"
			sEdge = append(sEdge, i)
			edges = append(edges, []int{i, n})
		}
		tags[n] = "op:max"
		edges = append(edges, sEdge)
		return mk(n+1, tags, edges, true)
	}
	log.Fatalf("unknown example %q (want 6.2, 6.19, 5.6 or chen-dalmau)", which)
	return nil
}
