// faqplan prints the ordering-theory pipeline of Figure 1 for a query:
// hypergraph → expression tree (compartmentalization + compression,
// Figures 2–6) → precedence poset → linear extensions → planned orderings
// and their FAQ-widths.
//
// Usage:
//
//	faqplan -example 6.2|6.19|5.6|chen-dalmau [-json]
//	faqplan -spec query.faq [-json]
//
// -json emits the report as JSON — the same PlanReport structure the faqd
// daemon serves on /v1/plan — instead of the human-readable pipeline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/server"
	"github.com/faqdb/faq/internal/spec"
)

func main() {
	// A fresh FlagSet per call keeps main re-runnable from tests.
	fs := flag.NewFlagSet("faqplan", flag.ExitOnError)
	example := fs.String("example", "", "built-in example: 6.2, 6.19, 5.6 or chen-dalmau")
	specFile := fs.String("spec", "", "query specification file (see internal/spec)")
	jsonOut := fs.Bool("json", false, "emit the plan report as JSON (the /v1/plan structure)")
	fs.Parse(os.Args[1:])

	var s *core.Shape
	var name func(int) string
	var specQuery *core.Query[float64]
	switch {
	case *specFile != "":
		f, err := os.Open(*specFile)
		if err != nil {
			log.Fatal(err)
		}
		q, err := spec.Parse(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		specQuery = q
		s = q.Shape()
		name = q.VarName
	case *example != "":
		var err error
		s, name, err = server.BuiltinExample(*example)
		if err != nil {
			log.Fatal(err)
		}
	default:
		fs.Usage()
		os.Exit(2)
	}

	// Both output modes render the same BuildPlanReport result — the
	// structure /v1/plan serves — so the human and JSON pipelines cannot
	// drift apart.
	rep, err := server.BuildPlanReport(context.Background(), s, name)
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetEscapeHTML(false)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("hypergraph: %s\n", rep.Hypergraph)
	fmt.Printf("tags:       %v\n", rep.Tags)

	fmt.Println("\nexpression tree (Definition 6.18, as in Figures 2–6):")
	fmt.Print(rep.ExpressionTree)
	if rep.SoundExpressionTree != "" {
		fmt.Println("expression tree (flat-rewriting sound form; non-closed Σ anchored):")
		fmt.Print(rep.SoundExpressionTree)
	}

	fmt.Printf("\nprecedence poset: %d ordered pairs, %d linear extensions (capped at 10000)\n",
		rep.PosetPairs, rep.LinearExtensions)

	fmt.Println("\nplans:")
	for _, p := range rep.Plans {
		fmt.Printf("  %-12s width %.3f  σ = (%s)\n", p.Method, p.Width, strings.Join(p.Order, ", "))
	}
	fmt.Printf("\nfhtw(H) = %.3f (lower bound when all orderings are equivalent)\n", rep.FHTW)

	// For an executable spec, show what an Engine would serve: the plan a
	// Prepare caches and the cache behavior of a repeated shape.
	if specQuery != nil {
		eng := core.NewEngine[float64](core.EngineOptions{Workers: 1})
		defer eng.Close()
		prep, err := eng.Prepare(specQuery)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := eng.Prepare(specQuery); err != nil { // same shape: cache hit
			log.Fatal(err)
		}
		st := eng.Stats()
		fmt.Printf("\nengine: Prepare caches %-12s width %.3f  σ = %s\n",
			prep.Plan().Method, prep.Plan().Width, core.OrderString(prep.Plan().Order, name))
		fmt.Printf("engine: repeated shape -> %d plan miss, %d plan hit\n",
			st.PlanCacheMisses, st.PlanCacheHits)
	}
}
