package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/testutil"
)

// runFaqplan drives the CLI in-process (main uses a fresh FlagSet per call,
// so repeated invocations are fine) and returns its stdout.
func runFaqplan(t *testing.T, args ...string) string {
	t.Helper()
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = append([]string{"faqplan"}, args...)
	return testutil.CaptureStdout(t, main)
}

func TestFaqplanSmoke(t *testing.T) {
	out := runFaqplan(t, "-example", "6.2")
	for _, want := range []string{"hypergraph:", "expression tree", "precedence poset"} {
		if !strings.Contains(out, want) {
			t.Fatalf("faqplan output missing %q:\n%s", want, out)
		}
	}
}

// TestFaqplanJSONGolden pins the -json report for Example 6.2 to a golden
// file: the JSON is the same PlanReport structure faqd serves on /v1/plan,
// so a drift here is a wire-format change and should be deliberate.
// Refresh with:
//
//	go run ./cmd/faqplan -example 6.2 -json > cmd/faqplan/testdata/plan_6.2.golden.json
func TestFaqplanJSONGolden(t *testing.T) {
	out := runFaqplan(t, "-example", "6.2", "-json")
	golden, err := os.ReadFile("testdata/plan_6.2.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("faqplan -json drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", out, golden)
	}
	// The golden file itself must stay valid JSON with the key fields.
	var rep map[string]any
	if err := json.Unmarshal(golden, &rep); err != nil {
		t.Fatalf("golden file is not JSON: %v", err)
	}
	for _, key := range []string{"hypergraph", "expression_tree", "plans", "fhtw"} {
		if _, ok := rep[key]; !ok {
			t.Fatalf("golden file missing %q", key)
		}
	}
}

// TestFaqplanJSONSpec checks -json on a spec file (named variables flow
// into the report).
func TestFaqplanJSONSpec(t *testing.T) {
	dir := t.TempDir()
	path := testutil.WriteFile(t, dir, "q.faq",
		"var a 2 sum\nvar b 2 sum\nfactor a b\n0 1 = 1\n1 0 = 2\nend\n")
	out := runFaqplan(t, "-spec", path, "-json")
	var rep struct {
		Vars  []string `json:"vars"`
		Plans []any    `json:"plans"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(rep.Vars) != 2 || rep.Vars[0] != "a" || len(rep.Plans) == 0 {
		t.Fatalf("spec report: %+v", rep)
	}
}
