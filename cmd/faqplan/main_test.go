package main

import (
	"os"
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/testutil"
)

// TestFaqplanSmoke drives the planner CLI in-process on a built-in example.
// main registers its flags on the global FlagSet, so it may run only once
// per test process.
func TestFaqplanSmoke(t *testing.T) {
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"faqplan", "-example", "6.2"}
	out := testutil.CaptureStdout(t, main)
	for _, want := range []string{"hypergraph:", "expression tree", "precedence poset"} {
		if !strings.Contains(out, want) {
			t.Fatalf("faqplan output missing %q:\n%s", want, out)
		}
	}
}
