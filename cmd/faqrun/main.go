// faqrun evaluates an FAQ query from a specification file (format in
// internal/spec) with InsideOut, printing the plan, statistics and the
// output (listing representation, truncated for large outputs).
//
// Usage:
//
//	faqrun -spec query.faq [-order "2,0,1"] [-max-rows 50] [-no-filters] [-no-indicators] [-workers n]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/hypergraph"
	"github.com/faqdb/faq/internal/spec"
)

func main() {
	specFile := flag.String("spec", "", "query specification file")
	orderFlag := flag.String("order", "", "explicit variable ordering, comma-separated ids")
	maxRows := flag.Int("max-rows", 50, "maximum output rows to print")
	noFilters := flag.Bool("no-filters", false, "disable the 01-OR output filters")
	noIndicators := flag.Bool("no-indicators", false, "disable indicator projections")
	workers := flag.Int("workers", 0, "executor worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()
	if *specFile == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*specFile)
	if err != nil {
		log.Fatal(err)
	}
	q, err := spec.Parse(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.FilterOutput = !*noFilters
	opts.IndicatorProjections = !*noIndicators
	opts.Workers = *workers

	shape := q.Shape()
	var order []int
	var method string
	if *orderFlag != "" {
		for _, tok := range strings.Split(*orderFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				log.Fatalf("bad ordering entry %q", tok)
			}
			order = append(order, v)
		}
		if ok, err := core.InEVO(shape, order); err != nil {
			log.Fatal(err)
		} else if !ok {
			log.Fatalf("ordering %v is not φ-equivalent; refusing to compute a different function", order)
		}
		method = "user"
	} else {
		plan := core.ChoosePlan(shape, hypergraph.NewWidthCalc(shape.H))
		order = plan.Order
		method = fmt.Sprintf("%s (width %.3f)", plan.Method, plan.Width)
	}

	res, err := core.InsideOut(q, order, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ordering: %s via %s\n", core.OrderString(order, q.VarName), method)
	fmt.Printf("stats: %d eliminations, %d intermediate rows (max %d), %d join probes\n",
		res.Stats.Eliminations, res.Stats.IntermediateRows, res.Stats.MaxIntermediate, res.Stats.Join.Probes)

	if q.NumFree == 0 {
		fmt.Printf("value: %v\n", res.Scalar())
		return
	}
	fmt.Printf("output: %d tuples over (", res.Output.Size())
	for i, v := range res.Output.Vars {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(q.VarName(v))
	}
	fmt.Println(")")
	for i, tup := range res.Output.Tuples {
		if i >= *maxRows {
			fmt.Printf("  ... %d more rows\n", res.Output.Size()-*maxRows)
			break
		}
		fmt.Printf("  %v = %v\n", tup, res.Output.Values[i])
	}
}
