// faqrun evaluates an FAQ query from a specification file (format in
// internal/spec) on the Engine API, printing the plan, statistics and the
// output (listing representation, truncated for large outputs).
//
// Usage:
//
//	faqrun -spec query.faq [-order "2,0,1"] [-mode solve|prepared] [-repeat n]
//	       [-max-rows 50] [-no-filters] [-no-indicators] [-workers n]
//
// -mode solve (the default) prepares and runs once.  -mode prepared is the
// serving demo: the query is prepared once and run -repeat times, printing
// per-run wall time and the engine's plan-cache/run counters, so the
// amortization of the Section 6–7 planning phase is visible directly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/spec"
)

// config collects the flag values; validate rejects unusable combinations
// before any work happens.
type config struct {
	specFile string
	order    string
	mode     string
	repeat   int
	maxRows  int
	workers  int
}

func (c config) validate() error {
	if c.specFile == "" {
		return fmt.Errorf("missing required -spec")
	}
	if c.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS, 1 = sequential), got %d", c.workers)
	}
	switch c.mode {
	case "solve", "prepared":
	default:
		return fmt.Errorf("unknown -mode %q (want solve or prepared)", c.mode)
	}
	if c.repeat < 1 {
		return fmt.Errorf("-repeat must be >= 1, got %d", c.repeat)
	}
	if c.repeat > 1 && c.mode != "prepared" {
		return fmt.Errorf("-repeat %d needs -mode prepared", c.repeat)
	}
	if c.maxRows < 0 {
		return fmt.Errorf("-max-rows must be >= 0, got %d", c.maxRows)
	}
	return nil
}

func parseOrder(s string) ([]int, error) {
	var order []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("bad ordering entry %q", tok)
		}
		order = append(order, v)
	}
	return order, nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.specFile, "spec", "", "query specification file")
	flag.StringVar(&cfg.order, "order", "", "explicit variable ordering, comma-separated ids")
	flag.StringVar(&cfg.mode, "mode", "solve", "solve (plan+run once) or prepared (prepare once, run -repeat times)")
	flag.IntVar(&cfg.repeat, "repeat", 1, "prepared-mode run count")
	flag.IntVar(&cfg.maxRows, "max-rows", 50, "maximum output rows to print")
	noFilters := flag.Bool("no-filters", false, "disable the 01-OR output filters")
	noIndicators := flag.Bool("no-indicators", false, "disable indicator projections")
	flag.IntVar(&cfg.workers, "workers", 0, "executor worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()
	if err := cfg.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "faqrun: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(cfg.specFile)
	if err != nil {
		log.Fatal(err)
	}
	q, err := spec.Parse(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.FilterOutput = !*noFilters
	opts.IndicatorProjections = !*noIndicators

	eng := core.NewEngine[float64](core.EngineOptions{Workers: cfg.workers})
	defer eng.Close()

	var prep *core.PreparedQuery[float64]
	if cfg.order != "" {
		order, err := parseOrder(cfg.order)
		if err != nil {
			log.Fatal(err)
		}
		if ok, err := core.InEVO(q.Shape(), order); err != nil {
			log.Fatal(err)
		} else if !ok {
			log.Fatalf("ordering %v is not φ-equivalent; refusing to compute a different function", order)
		}
		prep, err = eng.PrepareOrder(q, order, opts)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		prep, err = eng.PrepareOpts(q, opts)
		if err != nil {
			log.Fatal(err)
		}
	}
	plan := prep.Plan()
	fmt.Printf("ordering: %s via %s (width %.3f)\n",
		core.OrderString(plan.Order, q.VarName), plan.Method, plan.Width)

	ctx := context.Background()
	var res *core.Result[float64]
	for run := 0; run < cfg.repeat; run++ {
		start := time.Now()
		res, err = prep.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if cfg.mode == "prepared" {
			fmt.Printf("run %d: %s\n", run, time.Since(start).Round(time.Microsecond))
		}
	}
	if cfg.mode == "prepared" {
		// The full plan-cache snapshot, so prepared-mode amortization is
		// visible without a debugger: one miss (the Prepare), then pure runs.
		st := eng.StatsSnapshot()
		fmt.Printf("engine: %d prepared, %d plan hits, %d plan misses, %d coalesced, %d plans cached\n",
			st.Prepared, st.PlanCacheHits, st.PlanCacheMisses, st.PlanCoalesced, st.PlansCached)
		fmt.Printf("engine: %d runs, %d cancelled — planning amortized over %d run(s)\n",
			st.Runs, st.RunsCancelled, st.Runs)
	}
	fmt.Printf("stats: %d eliminations, %d intermediate rows (max %d), %d join probes\n",
		res.Stats.Eliminations, res.Stats.IntermediateRows, res.Stats.MaxIntermediate, res.Stats.Join.Probes)

	if q.NumFree == 0 {
		fmt.Printf("value: %v\n", res.Scalar())
		return
	}
	fmt.Printf("output: %d tuples over (", res.Output.Size())
	for i, v := range res.Output.Vars {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(q.VarName(v))
	}
	fmt.Println(")")
	var tup []int
	for i := 0; i < res.Output.Size(); i++ {
		if i >= cfg.maxRows {
			fmt.Printf("  ... %d more rows\n", res.Output.Size()-cfg.maxRows)
			break
		}
		tup = res.Output.Tuple(i, tup)
		fmt.Printf("  %v = %v\n", tup, res.Output.Values[i])
	}
}
