package main

import (
	"os"
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/testutil"
)

// querySpec is a tiny two-factor sum-product query with one free variable:
// φ(x) = Σ_y Σ_z R(x,y)·S(y,z).
const querySpec = `# smoke-test query
var x 2 free
var y 3 sum
var z 2 sum
factor x y
0 0 = 1
0 1 = 2
1 2 = 3
end
factor y z
0 0 = 1
1 1 = 1
2 0 = 4
end
`

// TestFaqrunSmoke drives the evaluator CLI in-process on an embedded spec.
// main registers its flags on the global FlagSet, so it may run only once
// per test process.
func TestFaqrunSmoke(t *testing.T) {
	spec := testutil.WriteFile(t, t.TempDir(), "query.faq", querySpec)
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"faqrun", "-spec", spec, "-workers", "2"}
	out := testutil.CaptureStdout(t, main)
	for _, want := range []string{"ordering:", "stats:", "output: 2 tuples"} {
		if !strings.Contains(out, want) {
			t.Fatalf("faqrun output missing %q:\n%s", want, out)
		}
	}
	// φ(0) = 1·1 + 2·1 = 3 and φ(1) = 3·4 = 12.
	if !strings.Contains(out, "[0] = 3") || !strings.Contains(out, "[1] = 12") {
		t.Fatalf("faqrun computed wrong values:\n%s", out)
	}
}

// TestValidateFlagCombinations is the table test for the config validator:
// bad combinations must produce an error (and main exits 2), instead of the
// undefined behavior negative worker counts used to produce.
func TestValidateFlagCombinations(t *testing.T) {
	base := config{specFile: "q.faq", mode: "solve", repeat: 1, maxRows: 50, workers: 0}
	cases := []struct {
		name    string
		mutate  func(c config) config
		wantErr string
	}{
		{"default-ok", func(c config) config { return c }, ""},
		{"prepared-ok", func(c config) config { c.mode = "prepared"; c.repeat = 10; return c }, ""},
		{"sequential-ok", func(c config) config { c.workers = 1; return c }, ""},
		{"missing-spec", func(c config) config { c.specFile = ""; return c }, "-spec"},
		{"negative-workers", func(c config) config { c.workers = -1; return c }, "-workers"},
		{"unknown-mode", func(c config) config { c.mode = "turbo"; return c }, "unknown -mode"},
		{"zero-repeat", func(c config) config { c.repeat = 0; return c }, "-repeat"},
		{"negative-repeat", func(c config) config { c.repeat = -3; return c }, "-repeat"},
		{"repeat-without-prepared", func(c config) config { c.repeat = 5; return c }, "-mode prepared"},
		{"negative-max-rows", func(c config) config { c.maxRows = -1; return c }, "-max-rows"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.mutate(base).validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseOrder(t *testing.T) {
	got, err := parseOrder(" 2, 0 ,1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("parseOrder = %v", got)
	}
	if _, err := parseOrder("1,x"); err == nil {
		t.Fatal("junk ordering should fail")
	}
}
