package main

import (
	"os"
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/testutil"
)

// querySpec is a tiny two-factor sum-product query with one free variable:
// φ(x) = Σ_y Σ_z R(x,y)·S(y,z).
const querySpec = `# smoke-test query
var x 2 free
var y 3 sum
var z 2 sum
factor x y
0 0 = 1
0 1 = 2
1 2 = 3
end
factor y z
0 0 = 1
1 1 = 1
2 0 = 4
end
`

// TestFaqrunSmoke drives the evaluator CLI in-process on an embedded spec.
// main registers its flags on the global FlagSet, so it may run only once
// per test process.
func TestFaqrunSmoke(t *testing.T) {
	spec := testutil.WriteFile(t, t.TempDir(), "query.faq", querySpec)
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"faqrun", "-spec", spec, "-workers", "2"}
	out := testutil.CaptureStdout(t, main)
	for _, want := range []string{"ordering:", "stats:", "output: 2 tuples"} {
		if !strings.Contains(out, want) {
			t.Fatalf("faqrun output missing %q:\n%s", want, out)
		}
	}
	// φ(0) = 1·1 + 2·1 = 3 and φ(1) = 3·4 = 12.
	if !strings.Contains(out, "[0] = 3") || !strings.Contains(out, "[1] = 12") {
		t.Fatalf("faqrun computed wrong values:\n%s", out)
	}
}
