package main

import (
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/faqdb/faq/internal/server"
	"github.com/faqdb/faq/internal/testutil"
)

// TestFaqloadSmokeAndLoad drives both faqload modes against an in-process
// faqd server: the smoke handshake, then a short verified load run that
// writes the JSON benchmark report.
func TestFaqloadSmokeAndLoad(t *testing.T) {
	s, err := server.New(server.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	dir := t.TempDir()
	jsonOut := dir + "/bench.json"

	smokeCfg := config{addr: ts.URL, concurrency: 1, duration: time.Second, dom: 8, smoke: true, wait: 5 * time.Second}
	out := testutil.CaptureStdout(t, func() {
		if err := run(smokeCfg, os.Stdout); err != nil {
			t.Errorf("smoke: %v", err)
		}
	})
	if !strings.Contains(out, "smoke ok") {
		t.Fatalf("smoke output:\n%s", out)
	}

	loadCfg := config{
		addr:        ts.URL,
		shapes:      "triangle,triangle-fresh,chain",
		concurrency: 2,
		duration:    150 * time.Millisecond,
		dom:         8,
		jsonOut:     jsonOut,
		wait:        5 * time.Second,
	}
	out = testutil.CaptureStdout(t, func() {
		if err := run(loadCfg, os.Stdout); err != nil {
			t.Errorf("load: %v", err)
		}
	})
	for _, want := range []string{"shape", "triangle-fresh", "statsz: plan hits"} {
		if !strings.Contains(out, want) {
			t.Fatalf("load output missing %q:\n%s", want, out)
		}
	}
	buf, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"tool": "faqload"`, `"shape": "chain"`, `"plan_cache_hits"`} {
		if !strings.Contains(string(buf), want) {
			t.Fatalf("bench JSON missing %q:\n%s", want, buf)
		}
	}

	// Under load, same-shape requests must have hit the cache: hits ≫ misses.
	st := s.Engine().StatsSnapshot()
	if st.PlanCacheHits+st.PlanCoalesced <= st.PlanCacheMisses {
		t.Fatalf("plan cache not amortizing: %+v", st)
	}
	if cfg := (config{}); cfg.validate() == nil {
		t.Fatal("empty config validated")
	}
}

// TestBuildWorkloadRejectsUnknown covers the workload-name error path.
func TestBuildWorkloadRejectsUnknown(t *testing.T) {
	if _, err := buildWorkload("bogus", 8); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
