// faqload is the load generator and serving benchmark for faqd: it drives
// shapes × concurrency × duration against a running daemon and reports a
// throughput/latency table plus the server's plan-cache counters, so the
// amortization claim of the serving story — same-shape requests hit one
// cached plan — is measurable from outside the process.
//
// Usage:
//
//	faqload -addr http://127.0.0.1:8080 [-shapes triangle,triangle-fresh,star,chain]
//	        [-concurrency 8] [-duration 3s] [-dom 48] [-wire json|binary|both]
//	        [-json BENCH_PR3.json] [-trace]
//	faqload -addr ... -smoke     # healthz + one verified query, then exit
//	faqload -addr ... -smoke-obs [-slow-log path]   # observability gate
//
// -trace attaches a server-side stage breakdown (one traced probe query
// per shape, milliseconds per pipeline stage) to each report row.
// -smoke-obs runs traced triangle and triangle-dataset queries (the
// daemon needs -data), requires their span trees to account for wall
// time within 10%, asserts /metrics parses as Prometheus text with the
// stage histograms and shape table, and — given -slow-log — that the
// daemon's slow-query log holds valid JSON entries.
//
// Shapes: triangle, triangle-fresh (same spec, fresh factor data per
// request), star, chain, triangle-int (the int domain), triangle-tropical
// (the tropical min-plus domain), triangle-delta (per-client /v1/delta
// sessions cycling insert/delete batches that return to baseline),
// triangle-dataset (the triangle data uploaded once as a named dataset,
// then queried by name with zero factor bytes on the wire — needs a
// daemon started with -data).  -wire
// selects the encoding of fresh factor or delta data: json (the default),
// binary (the internal/wire framing), or both — which drives each
// data-shipping shape twice and labels the binary row "<shape>+bin", the
// comparison behind make bench-wire and make bench-delta.  -batch N
// additionally re-drives every query shape as /v1/batch requests of N
// items (labelled "<shape>+batchN"; binary shapes ship the batch
// envelope and stream binary result records), each item verified against
// the same oracle — the same-run A/B behind make bench-batch.
//
// Every response is verified against a local single-threaded Solve of the
// same spec, so a load run is also a correctness run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/obs"
	"github.com/faqdb/faq/internal/server"
	"github.com/faqdb/faq/internal/spec"
	"github.com/faqdb/faq/internal/wire"
)

type config struct {
	addr         string
	shapes       string
	concurrency  int
	duration     time.Duration
	dom          int
	wire         string
	batch        int
	jsonOut      string
	smoke        bool
	smokeDataset string
	smokeObs     bool
	slowLogPath  string
	trace        bool
	wait         time.Duration
}

func (c config) validate() error {
	if c.addr == "" {
		return fmt.Errorf("missing required -addr")
	}
	if c.concurrency < 1 {
		return fmt.Errorf("-concurrency must be >= 1, got %d", c.concurrency)
	}
	if c.duration <= 0 {
		return fmt.Errorf("-duration must be > 0, got %v", c.duration)
	}
	if c.dom < 4 {
		return fmt.Errorf("-dom must be >= 4, got %d", c.dom)
	}
	switch c.wire {
	case "json", "binary", "both":
	default:
		return fmt.Errorf("-wire must be json, binary or both, got %q", c.wire)
	}
	if c.batch < 0 {
		return fmt.Errorf("-batch must be >= 0, got %d", c.batch)
	}
	switch c.smokeDataset {
	case "", "put", "cold":
	default:
		return fmt.Errorf("-smoke-dataset must be put or cold, got %q", c.smokeDataset)
	}
	return nil
}

// workload is one named drive target: a fixed spec (the plan-cache key
// under load), an optional per-request factor refresh with its encoding,
// and a verifier holding every response to the local oracle.
type workload struct {
	name    string
	spec    string
	factors []server.FactorData // nil: run the spec's own data
	binary  bool                // ship factors/deltas as wire frames, not JSON
	wireDom wire.Domain         // frame domain when binary
	verify  func(*server.QueryResponse) error
	// setup runs once before the drive — dataset workloads upload their
	// factors here, so the drive itself ships zero factor bytes.
	setup func(ctx context.Context, client *server.Client) error
	// Delta workloads drive /v1/delta instead of /v1/query: each client
	// owns a session and cycles through steps, verifying the maintained
	// output row for row at every one.  seedVerify checks the session's
	// freshly seeded state before the cycle starts.
	steps      []deltaStep
	seedVerify func(*server.DeltaResponse) error
}

// deltaStep is one step of a delta workload's cycle: the batch in both
// encodings, plus the expected maintained output (precomputed by a local
// single-threaded recompute of the state the step produces).
type deltaStep struct {
	deltas []server.DeltaData
	frames []*wire.DeltaFrame
	verify func(*server.DeltaResponse) error
}

// shapeResult is one row of the throughput/latency table; the JSON form
// feeds the BENCH_PR*.json reports.
type shapeResult struct {
	Shape       string  `json:"shape"`
	Wire        string  `json:"wire"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	RPS         float64 `json:"rps"`
	P50MS       float64 `json:"p50_ms"`
	P90MS       float64 `json:"p90_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
	// Stages is the server-side stage breakdown (milliseconds per request
	// pipeline stage) of one traced probe query, attached in -trace mode.
	Stages map[string]float64 `json:"stage_ms,omitempty"`
}

// benchReport is the BENCH_PR*.json payload.
type benchReport struct {
	Tool        string                 `json:"tool"`
	GitSHA      string                 `json:"git_sha,omitempty"`
	UnixTime    int64                  `json:"unix_time"`
	Addr        string                 `json:"addr"`
	Dom         int                    `json:"dom"`
	Results     []shapeResult          `json:"results"`
	FinalStatsz *server.StatszResponse `json:"final_statsz,omitempty"`
}

// gitSHA resolves the working tree's commit, best-effort: reports compare
// across commits, so the stamp matters, but a missing git is no reason to
// fail a load run.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "faqd base URL (http://host:port or host:port)")
	flag.StringVar(&cfg.shapes, "shapes", "triangle,triangle-fresh,star,chain", "comma-separated workload names")
	flag.IntVar(&cfg.concurrency, "concurrency", 8, "concurrent clients per shape")
	flag.DurationVar(&cfg.duration, "duration", 3*time.Second, "load duration per shape")
	flag.IntVar(&cfg.dom, "dom", 48, "domain size of the generated workloads")
	flag.StringVar(&cfg.wire, "wire", "json", "fresh-factor encoding: json, binary, or both (drives data shapes twice)")
	flag.IntVar(&cfg.batch, "batch", 0, "also drive each query shape as /v1/batch requests of N items (0 disables)")
	flag.StringVar(&cfg.jsonOut, "json", "", "write the benchmark report to this file")
	flag.BoolVar(&cfg.smoke, "smoke", false, "smoke mode: healthz + one verified query, then exit")
	flag.StringVar(&cfg.smokeDataset, "smoke-dataset", "", "dataset smoke mode: put (upload + verified dataset query) or cold (verify a restart-surviving dataset), then exit")
	flag.BoolVar(&cfg.smokeObs, "smoke-obs", false, "observability smoke mode: traced queries, /metrics parse, slow-log check, then exit")
	flag.StringVar(&cfg.slowLogPath, "slow-log", "", "path of the daemon's slow-query log, validated in -smoke-obs mode")
	flag.BoolVar(&cfg.trace, "trace", false, "attach a server-side stage breakdown (one traced probe per shape) to the report")
	flag.DurationVar(&cfg.wait, "wait", 10*time.Second, "how long to wait for the daemon to become healthy")
	flag.Parse()
	if err := cfg.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "faqload: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		log.Fatalf("faqload: %v", err)
	}
}

func run(cfg config, out *os.File) error {
	if !strings.Contains(cfg.addr, "://") {
		cfg.addr = "http://" + cfg.addr
	}
	ctx := context.Background()
	client := server.NewClient(cfg.addr)
	// http.DefaultTransport keeps only 2 idle connections per host: at
	// higher concurrency most requests would pay a fresh TCP handshake and
	// the table would measure connection churn, not serving throughput.
	client.HTTPClient = &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.concurrency * 2,
		MaxIdleConnsPerHost: cfg.concurrency * 2,
	}}
	if err := client.WaitHealthy(ctx, cfg.wait); err != nil {
		return err
	}

	if cfg.smokeDataset != "" {
		return smokeDataset(ctx, client, cfg, out)
	}
	if cfg.smokeObs {
		return smokeObs(ctx, client, cfg, out)
	}
	if cfg.smoke {
		return smoke(ctx, client, cfg, out)
	}

	var report benchReport
	report.Tool, report.Addr, report.Dom = "faqload", cfg.addr, cfg.dom
	report.GitSHA, report.UnixTime = gitSHA(), time.Now().Unix()
	fmt.Fprintf(out, "%-20s %6s %5s %8s %6s %9s %9s %9s %9s %9s\n",
		"shape", "wire", "conc", "reqs", "errs", "rps", "p50(ms)", "p90(ms)", "p99(ms)", "max(ms)")
	for _, name := range strings.Split(cfg.shapes, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		w, err := buildWorkload(name, cfg.dom)
		if err != nil {
			return err
		}
		if w.setup != nil {
			if err := w.setup(ctx, client); err != nil {
				return fmt.Errorf("shape %s setup: %v", name, err)
			}
		}
		for _, v := range encodings(w, cfg.wire) {
			res, err := drive(ctx, client, v, cfg)
			if err != nil {
				return err
			}
			if cfg.trace && v.steps == nil {
				if res.Stages, err = stageProbe(ctx, client, v); err != nil {
					return fmt.Errorf("shape %s trace probe: %v", v.name, err)
				}
			}
			report.Results = append(report.Results, res)
			fmt.Fprintf(out, "%-20s %6s %5d %8d %6d %9.1f %9.2f %9.2f %9.2f %9.2f\n",
				res.Shape, res.Wire, res.Concurrency, res.Requests, res.Errors, res.RPS,
				res.P50MS, res.P90MS, res.P99MS, res.MaxMS)
			if cfg.batch > 0 && v.steps == nil && v.setup == nil {
				// Same-run A/B: the same shape again as /v1/batch requests of
				// -batch items, every item verified against the oracle.  The
				// row's Requests/RPS count items, so it compares directly
				// against the single-query row above.
				bres, err := driveBatch(ctx, client, v, cfg)
				if err != nil {
					return err
				}
				report.Results = append(report.Results, bres)
				fmt.Fprintf(out, "%-20s %6s %5d %8d %6d %9.1f %9.2f %9.2f %9.2f %9.2f\n",
					bres.Shape, bres.Wire, bres.Concurrency, bres.Requests, bres.Errors, bres.RPS,
					bres.P50MS, bres.P90MS, bres.P99MS, bres.MaxMS)
			}
		}
	}

	st, err := client.Statsz(ctx)
	if err != nil {
		return err
	}
	report.FinalStatsz = st
	fmt.Fprintf(out, "statsz: plan hits %d, misses %d, coalesced %d, runs %d, binary %d, in-flight %d\n",
		st.Engine.PlanCacheHits, st.Engine.PlanCacheMisses, st.Engine.PlanCoalesced,
		st.Engine.Runs, st.Server.QueriesBinary, st.Server.InFlight)
	if st.Engine.PlanCacheHits+st.Engine.PlanCoalesced <= st.Engine.PlanCacheMisses {
		fmt.Fprintf(out, "warning: plan cache hits do not dominate misses — is something else hitting this daemon?\n")
	}

	if cfg.jsonOut != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", cfg.jsonOut)
	}
	return nil
}

// encodings expands one workload into the encoding variants -wire asks
// for.  Shapes with no fresh data have nothing to encode and run once.
func encodings(w workload, mode string) []workload {
	if w.factors == nil && w.steps == nil {
		return []workload{w}
	}
	switch mode {
	case "binary":
		w.binary = true
		return []workload{w}
	case "both":
		bin := w
		bin.name += "+bin"
		bin.binary = true
		return []workload{w, bin}
	}
	return []workload{w}
}

// smoke is the CI handshake: one verified query end to end.
func smoke(ctx context.Context, client *server.Client, cfg config, out *os.File) error {
	w, err := buildWorkload("triangle", cfg.dom)
	if err != nil {
		return err
	}
	resp, err := client.Query(ctx, &server.QueryRequest{Spec: w.spec})
	if err != nil {
		return err
	}
	if err := w.verify(resp); err != nil {
		return fmt.Errorf("smoke query: %v", err)
	}
	st, err := client.Statsz(ctx)
	if err != nil {
		return err
	}
	v, _ := resp.FloatValue()
	fmt.Fprintf(out, "smoke ok: value=%g plan=%s width=%.3f runs=%d\n",
		v, resp.Plan.Method, resp.Plan.Width, st.Engine.Runs)
	return nil
}

// stageProbe runs one traced query of the workload's spec and folds the
// top-level span tree into per-stage milliseconds for the BENCH report.
// Delta workloads have no /v1/query form and are skipped by the caller.
func stageProbe(ctx context.Context, client *server.Client, w workload) (map[string]float64, error) {
	req := &server.QueryRequest{Spec: w.spec}
	if w.factors != nil {
		// The probe always ships JSON — it measures server-side stages, not
		// the wire encoding, and the traced JSON path exercises every stage.
		req.Factors = w.factors
	}
	resp, err := client.QueryWithTrace(ctx, req)
	if err != nil {
		return nil, err
	}
	if err := w.verify(resp); err != nil {
		return nil, err
	}
	if resp.Trace == nil || len(resp.Trace.Spans) == 0 {
		return nil, fmt.Errorf("traced response carried no span tree")
	}
	stages := make(map[string]float64, len(resp.Trace.Spans))
	for _, sp := range resp.Trace.Spans {
		stages[sp.Name] += sp.DurMS
	}
	return stages, nil
}

// checkTraceAccounts holds a span tree to the accounting contract: the
// top-level stage spans must cover the traced wall time to within 10%
// (with a 1ms absolute floor for sub-millisecond queries) and must not
// exceed it — stages are sequential, so overlap would be a bug.
func checkTraceAccounts(name string, td *obs.TraceData) error {
	if td == nil || len(td.Spans) == 0 {
		return fmt.Errorf("%s: traced response carried no span tree", name)
	}
	var sum float64
	for _, sp := range td.Spans {
		sum += sp.DurMS
	}
	slack := td.DurMS * 0.10
	if slack < 1 {
		slack = 1
	}
	if gap := td.DurMS - sum; gap > slack || gap < -0.01 {
		return fmt.Errorf("%s: stage spans sum to %.3fms of %.3fms wall (gap %.3fms > slack %.3fms)",
			name, sum, td.DurMS, td.DurMS-sum, slack)
	}
	return nil
}

// smokeObs is the observability gate behind make obs-smoke: traced
// queries whose span trees must account for the request wall time, a
// /metrics scrape that must parse as Prometheus text and carry the stage
// histograms and shape table, and — when the daemon runs with
// -slow-query=0 and -slow-query-log — a slow-query log that must hold
// valid JSON entries (checked via -slow-log).
func smokeObs(ctx context.Context, client *server.Client, cfg config, out *os.File) error {
	// One traced plain-triangle query, verified against the oracle.
	tri, err := buildWorkload("triangle", cfg.dom)
	if err != nil {
		return err
	}
	resp, err := client.QueryWithTrace(ctx, &server.QueryRequest{Spec: tri.spec})
	if err != nil {
		return err
	}
	if err := tri.verify(resp); err != nil {
		return fmt.Errorf("traced triangle: %v", err)
	}
	if err := checkTraceAccounts("triangle", resp.Trace); err != nil {
		return err
	}

	// The acceptance query: a traced triangle-dataset run (the daemon must
	// have -data), whose spans must likewise account for the wall time.
	ds, err := buildWorkload("triangle-dataset", cfg.dom)
	if err != nil {
		return err
	}
	if err := ds.setup(ctx, client); err != nil {
		return fmt.Errorf("dataset upload: %v", err)
	}
	dresp, err := client.QueryWithTrace(ctx, &server.QueryRequest{Spec: ds.spec})
	if err != nil {
		return err
	}
	if err := ds.verify(dresp); err != nil {
		return fmt.Errorf("traced dataset query: %v", err)
	}
	if err := checkTraceAccounts("triangle-dataset", dresp.Trace); err != nil {
		return err
	}

	// /metrics must parse as Prometheus text and carry the new series.
	// The request histogram is fed after the response bytes flush, so
	// scrape until both queries have landed.
	var samples obs.PromSamples
	deadline := time.Now().Add(5 * time.Second)
	for {
		raw, err := client.Metrics(ctx)
		if err != nil {
			return err
		}
		if samples, err = obs.ParsePromText(bytes.NewReader(raw)); err != nil {
			return fmt.Errorf("/metrics does not parse as Prometheus text: %v", err)
		}
		if samples[`faqd_request_duration_seconds_count{endpoint="query"}`] >= 2 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("/metrics never recorded the smoke queries: %v",
				samples[`faqd_request_duration_seconds_count{endpoint="query"}`])
		}
		time.Sleep(20 * time.Millisecond)
	}
	if samples["faqd_queries_total"] < 2 {
		return fmt.Errorf("faqd_queries_total = %v, want >= 2", samples["faqd_queries_total"])
	}
	for _, st := range []string{"parse", "resolve", "prepare", "execute", "encode"} {
		key := fmt.Sprintf("faqd_stage_duration_seconds_count{stage=%q}", st)
		if samples[key] < 1 {
			return fmt.Errorf("%s = %v, want >= 1", key, samples[key])
		}
	}
	// The sort-strategy counters must round-trip the exposition parser.
	// The smoke queries sort factor blocks below the radix cutoff, so only
	// presence is asserted, not a minimum.
	for _, key := range []string{
		"faqd_sort_radix_total",
		"faqd_sort_comparison_total",
		"faqd_scan_splits_total",
		"faqd_scan_splits_cache_aware_total",
		"faqd_scan_block_keys",
	} {
		if _, ok := samples[key]; !ok {
			return fmt.Errorf("/metrics is missing %s", key)
		}
	}
	// Both smoke queries share one structural shape key (the dataset query
	// is the same triangle hypergraph), so one series with two counts.
	shapes := 0
	var shapeCount float64
	for k := range samples {
		if strings.HasPrefix(k, "faqd_shape_queries_total{") {
			shapes++
			shapeCount += samples[k]
		}
	}
	if shapes < 1 || shapeCount < 2 {
		return fmt.Errorf("/metrics shape table: %d series counting %v queries, want >= 1 series counting >= 2", shapes, shapeCount)
	}

	// With -slow-log, the daemon ran -slow-query=0: every query must have
	// produced one valid JSON entry with its stage trace.
	entries := 0
	if cfg.slowLogPath != "" {
		deadline := time.Now().Add(5 * time.Second)
		for {
			data, err := os.ReadFile(cfg.slowLogPath)
			if err == nil && len(data) > 0 {
				for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
					var entry obs.SlowQueryEntry
					if err := json.Unmarshal([]byte(line), &entry); err != nil {
						return fmt.Errorf("slow-query log line is not JSON: %v\n%s", err, line)
					}
					if entry.Endpoint == "" || entry.Trace == nil {
						return fmt.Errorf("slow-query log entry missing endpoint or trace: %s", line)
					}
					entries++
				}
			}
			if entries >= 2 {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("slow-query log %s has %d entries, want >= 2", cfg.slowLogPath, entries)
			}
			time.Sleep(20 * time.Millisecond)
			entries = 0
		}
	}

	fmt.Fprintf(out, "obs smoke ok: traced=2 metric_samples=%d shape_series=%d slow_log_entries=%d\n",
		len(samples), shapes, entries)
	return nil
}

// drive runs one workload at the configured concurrency for the configured
// duration and folds per-client latencies into one table row.
func drive(ctx context.Context, client *server.Client, w workload, cfg config) (shapeResult, error) {
	if w.steps != nil {
		return driveDelta(ctx, client, w, cfg)
	}
	wireLabel := "-"
	req := &server.QueryRequest{Spec: w.spec}
	var stream []byte
	switch {
	case w.factors != nil && w.binary:
		wireLabel = "binary"
		frames := make([]*wire.Frame, len(w.factors))
		for i, fd := range w.factors {
			f, err := server.FactorFrame(w.wireDom, fd)
			if err != nil {
				return shapeResult{}, fmt.Errorf("shape %s: %v", w.name, err)
			}
			frames[i] = f
		}
		// Encode once, post many: the refresh payload is identical per
		// request, so per-request work is one POST of prebuilt bytes.
		var err error
		if stream, err = server.EncodeQueryStream(req, frames); err != nil {
			return shapeResult{}, fmt.Errorf("shape %s: %v", w.name, err)
		}
	case w.factors != nil:
		wireLabel = "json"
		req.Factors = w.factors
	}
	query := func() (*server.QueryResponse, error) {
		if stream != nil {
			return client.QueryStream(ctx, stream)
		}
		return client.Query(ctx, req)
	}

	stop := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var lats []time.Duration
	var requests, errCount int64
	var firstErr error

	start := time.Now()
	for g := 0; g < cfg.concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []time.Duration
			var mineReqs, mineErrs int64
			var myErr error
			for time.Now().Before(stop) {
				t0 := time.Now()
				resp, err := query()
				mine = append(mine, time.Since(t0))
				mineReqs++
				if err == nil {
					err = w.verify(resp)
				}
				if err != nil {
					mineErrs++
					if myErr == nil {
						myErr = fmt.Errorf("shape %s: %v", w.name, err)
					}
				}
			}
			mu.Lock()
			lats = append(lats, mine...)
			requests += mineReqs
			errCount += mineErrs
			if firstErr == nil {
				firstErr = myErr
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return foldResult(w.name, wireLabel, cfg, lats, requests, errCount, time.Since(start), firstErr)
}

// driveBatch drives a workload as /v1/batch requests of cfg.batch items —
// each item shipping the workload's factor data (or running the spec's
// own data when it has none) — and verifies every item of every response
// against the same oracle the single-query drive uses, plus the batch
// contract itself (status ok, completed == n, items in index order).
// The result row counts items, not POSTs, so its RPS is the per-item
// throughput: directly comparable with the single-query row, which is
// the whole point of the A/B.  Latency percentiles are per batch POST.
func driveBatch(ctx context.Context, client *server.Client, w workload, cfg config) (shapeResult, error) {
	n := cfg.batch
	name := fmt.Sprintf("%s+batch%d", w.name, n)
	breq := &server.BatchRequest{Spec: w.spec}
	wireLabel := "json"
	var stream []byte
	switch {
	case w.binary:
		// Fully binary: the FAQB request envelope in, streamed FAQR result
		// records out.  Encode once, post many.
		wireLabel = "binary"
		groups := make([][]*wire.Frame, n)
		if w.factors != nil {
			frames := make([]*wire.Frame, len(w.factors))
			for i, fd := range w.factors {
				f, err := server.FactorFrame(w.wireDom, fd)
				if err != nil {
					return shapeResult{}, fmt.Errorf("shape %s: %v", name, err)
				}
				frames[i] = f
			}
			for i := range groups {
				groups[i] = frames
			}
		}
		var err error
		if stream, err = server.EncodeBatchStream(breq, groups); err != nil {
			return shapeResult{}, fmt.Errorf("shape %s: %v", name, err)
		}
	default:
		items := make([]server.BatchItem, n)
		for i := range items {
			items[i] = server.BatchItem{Factors: w.factors}
		}
		breq.Items = items
	}

	checkBatch := func(resp *server.BatchResponse, err error) error {
		if err != nil {
			return err
		}
		if resp.Status != server.BatchStatusOK || resp.Completed != n || len(resp.Items) != n {
			return fmt.Errorf("batch status=%q completed=%d items=%d, want ok/%d/%d",
				resp.Status, resp.Completed, len(resp.Items), n, n)
		}
		for i := range resp.Items {
			item := &resp.Items[i]
			if item.Index != i {
				return fmt.Errorf("item %d carries index %d", i, item.Index)
			}
			if item.Error != "" {
				return fmt.Errorf("item %d failed: %s", i, item.Error)
			}
			// The per-item oracle: each item re-verified exactly as a
			// single-query response would be.
			if err := w.verify(&server.QueryResponse{Value: item.Value, Output: item.Output}); err != nil {
				return fmt.Errorf("item %d: %v", i, err)
			}
		}
		return nil
	}
	post := func() error {
		if stream != nil {
			resp, err := client.QueryBatchStream(ctx, wire.BatchContentType, stream, nil)
			return checkBatch(resp, err)
		}
		resp, err := client.QueryBatch(ctx, breq)
		return checkBatch(resp, err)
	}

	stop := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var lats []time.Duration
	var requests, errCount int64
	var firstErr error

	start := time.Now()
	for g := 0; g < cfg.concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []time.Duration
			var mineReqs, mineErrs int64
			var myErr error
			for time.Now().Before(stop) {
				t0 := time.Now()
				err := post()
				mine = append(mine, time.Since(t0))
				mineReqs += int64(n) // the row counts items, not POSTs
				if err != nil {
					mineErrs++
					if myErr == nil {
						myErr = fmt.Errorf("shape %s: %v", name, err)
					}
				}
			}
			mu.Lock()
			lats = append(lats, mine...)
			requests += mineReqs
			errCount += mineErrs
			if firstErr == nil {
				firstErr = myErr
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return foldResult(name, wireLabel, cfg, lats, requests, errCount, time.Since(start), firstErr)
}

// driveDelta drives a delta workload: every client seeds its own session,
// then cycles the workload's steps, verifying each maintained response
// row for row against the precomputed recompute.  A client stops at its
// first error — a failed step desynchronizes the session state, and every
// later verification would report the same divergence.
func driveDelta(ctx context.Context, client *server.Client, w workload, cfg config) (shapeResult, error) {
	wireLabel := "json"
	if w.binary {
		wireLabel = "binary"
	}
	// Session names carry a nonce so repeated faqload runs against one
	// daemon never adopt a mid-cycle state from a previous run.
	nonce := time.Now().UnixNano()
	stop := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var lats []time.Duration
	var requests, errCount int64
	var firstErr error

	start := time.Now()
	for g := 0; g < cfg.concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			session := fmt.Sprintf("faqload-%s-%d-%d", w.name, nonce, g)
			var mine []time.Duration
			var mineReqs, mineErrs int64
			var myErr error
			fail := func(err error) {
				mineErrs++
				if myErr == nil {
					myErr = fmt.Errorf("shape %s session %s: %v", w.name, session, err)
				}
			}

			// Encode once, post many: each step's stream is identical for
			// this client's whole run.
			var seedStream []byte
			var streams [][]byte
			if w.binary {
				var err error
				hdr := &server.DeltaRequest{Spec: w.spec, Session: session}
				if seedStream, err = server.EncodeDeltaStream(hdr, nil); err != nil {
					fail(err)
				}
				for _, st := range w.steps {
					s, err := server.EncodeDeltaStream(hdr, st.frames)
					if err != nil {
						fail(err)
						break
					}
					streams = append(streams, s)
				}
			}
			post := func(step int) (*server.DeltaResponse, error) {
				switch {
				case w.binary && step < 0:
					return client.DeltaStream(ctx, seedStream)
				case w.binary:
					return client.DeltaStream(ctx, streams[step])
				case step < 0:
					return client.Delta(ctx, &server.DeltaRequest{Spec: w.spec, Session: session})
				}
				return client.Delta(ctx, &server.DeltaRequest{
					Spec: w.spec, Session: session, Deltas: w.steps[step].deltas})
			}

			if myErr == nil {
				// Seed the session (a real, counted request) and verify the
				// pristine state before evolving it.
				t0 := time.Now()
				resp, err := post(-1)
				mine = append(mine, time.Since(t0))
				mineReqs++
				if err == nil {
					err = w.seedVerify(resp)
				}
				if err != nil {
					fail(err)
				}
			}
			for i := 0; myErr == nil && time.Now().Before(stop); i++ {
				step := i % len(w.steps)
				t0 := time.Now()
				resp, err := post(step)
				mine = append(mine, time.Since(t0))
				mineReqs++
				if err == nil {
					err = w.steps[step].verify(resp)
				}
				if err != nil {
					fail(fmt.Errorf("step %d (cycle pos %d): %v", i, step, err))
				}
			}

			mu.Lock()
			lats = append(lats, mine...)
			requests += mineReqs
			errCount += mineErrs
			if firstErr == nil {
				firstErr = myErr
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	return foldResult(w.name, wireLabel, cfg, lats, requests, errCount, time.Since(start), firstErr)
}

// foldResult folds per-client latencies into one table row.
func foldResult(name, wireLabel string, cfg config, lats []time.Duration,
	requests, errCount int64, elapsed time.Duration, firstErr error) (shapeResult, error) {
	if firstErr != nil {
		return shapeResult{}, fmt.Errorf("shape %s: %d/%d requests failed, first: %v",
			name, errCount, requests, firstErr)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return float64(lats[int(p*float64(len(lats)-1))]) / float64(time.Millisecond)
	}
	return shapeResult{
		Shape:       name,
		Wire:        wireLabel,
		Concurrency: cfg.concurrency,
		DurationSec: elapsed.Seconds(),
		Requests:    requests,
		Errors:      errCount,
		RPS:         float64(requests) / elapsed.Seconds(),
		P50MS:       q(0.50),
		P90MS:       q(0.90),
		P99MS:       q(0.99),
		MaxMS:       q(1),
	}, nil
}

// floatVerifier returns a verifier holding responses to the bit pattern of
// an expected float64 scalar.
func floatVerifier(want float64) func(*server.QueryResponse) error {
	bits := math.Float64bits(want)
	return func(resp *server.QueryResponse) error {
		got, err := resp.FloatValue()
		if err != nil {
			return err
		}
		if math.Float64bits(got) != bits {
			return fmt.Errorf("got %v, want %v", got, want)
		}
		return nil
	}
}

// buildWorkload generates a named workload over domain size dom and
// computes its expected answer with a local single-threaded Solve.
func buildWorkload(name string, dom int) (workload, error) {
	w := workload{name: name}
	switch name {
	case "triangle":
		w.spec = triangleSpec(dom)
	case "triangle-fresh":
		// Same spec (and so the same plan-cache key) as "triangle", but
		// every request ships fresh factor data: the RunWithFactors path.
		w.spec = triangleSpec(dom)
		fd := server.FactorData{}
		for a := 0; a < dom; a++ {
			for b := 0; b < dom; b++ {
				if a < b {
					fd.Tuples = append(fd.Tuples, []int{a, b})
					fd.Values = append(fd.Values, 1)
				}
			}
		}
		w.factors = []server.FactorData{fd, fd, fd}
		w.wireDom = wire.DomainFloat
	case "star":
		w.spec = starSpec(dom)
	case "chain":
		w.spec = chainSpec(dom)
	case "triangle-int":
		// The triangle shape in the counting domain: same hypergraph and
		// aggregate tags as "triangle", so it shares the float plan-cache
		// entry through core.Retype.
		return intWorkload(name, "domain int\n"+triangleSpec(dom))
	case "triangle-tropical":
		return tropicalWorkload(name, tropicalTriangleSpec(dom))
	case "triangle-delta":
		return deltaWorkload(name, dom)
	case "triangle-dataset":
		return datasetWorkload(name, dom)
	default:
		return w, fmt.Errorf("unknown shape %q (want triangle, triangle-fresh, star, chain, triangle-int, triangle-tropical, triangle-delta or triangle-dataset)", name)
	}

	q, err := spec.Parse(strings.NewReader(w.spec))
	if err != nil {
		return w, fmt.Errorf("shape %s: %v", name, err)
	}
	if w.factors != nil {
		// The oracle must see the fresh data, not the spec placeholder.
		for i, fd := range w.factors {
			f, err := factor.New(q.D, q.Factors[i].Vars, fd.Tuples, fd.Values, nil)
			if err != nil {
				return w, err
			}
			q.Factors[i] = f
		}
	}
	want, err := solveScalar(q)
	if err != nil {
		return w, fmt.Errorf("shape %s oracle: %v", name, err)
	}
	w.verify = floatVerifier(want)
	return w, nil
}

// intWorkload builds an int-domain workload verified against the int64
// oracle exactly (no float round-trip).
func intWorkload(name, specText string) (workload, error) {
	w := workload{name: name, spec: specText, wireDom: wire.DomainInt}
	doc, err := spec.ParseDocument(strings.NewReader(specText))
	if err != nil {
		return w, fmt.Errorf("shape %s: %v", name, err)
	}
	q, _, err := doc.BuildInt()
	if err != nil {
		return w, fmt.Errorf("shape %s: %v", name, err)
	}
	want, err := solveScalar(q)
	if err != nil {
		return w, fmt.Errorf("shape %s oracle: %v", name, err)
	}
	w.verify = func(resp *server.QueryResponse) error {
		got, err := resp.IntValue()
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("got %d, want %d", got, want)
		}
		return nil
	}
	return w, nil
}

// tropicalWorkload builds a tropical-domain workload (min-plus shortest
// structure) verified bit-for-bit against the float64 oracle.
func tropicalWorkload(name, specText string) (workload, error) {
	w := workload{name: name, spec: specText, wireDom: wire.DomainTropical}
	doc, err := spec.ParseDocument(strings.NewReader(specText))
	if err != nil {
		return w, fmt.Errorf("shape %s: %v", name, err)
	}
	q, _, err := doc.BuildTropical()
	if err != nil {
		return w, fmt.Errorf("shape %s: %v", name, err)
	}
	want, err := solveScalar(q)
	if err != nil {
		return w, fmt.Errorf("shape %s oracle: %v", name, err)
	}
	w.verify = floatVerifier(want)
	return w, nil
}

// deltaWorkload builds the /v1/delta drive target: a free-variable
// triangle listing over the triangleSpec edge set, evolved by a 4-step
// cycle — insert K loop edges into the first relation, insert them into
// the second, delete them from the first, delete them from the second —
// which returns the session to its seeded baseline.  The expected output
// of every step is precomputed by applying the batch to local factor
// copies and re-solving single-threaded, so each maintained response is
// verified row for row against a full recompute.
func deltaWorkload(name string, dom int) (workload, error) {
	w := workload{name: name, wireDom: wire.DomainFloat}
	var b strings.Builder
	fmt.Fprintf(&b, "var x %d free\nvar y %d sum\nvar z %d sum\n", dom, dom, dom)
	for _, e := range [][2]string{{"x", "y"}, {"y", "z"}, {"x", "z"}} {
		fmt.Fprintf(&b, "factor %s %s\n", e[0], e[1])
		for a := 0; a < dom; a++ {
			for c := 0; c < dom; c++ {
				if (a*7+c*3)%5 == 0 && a != c {
					fmt.Fprintf(&b, "%d %d = 1\n", a, c)
				}
			}
		}
		b.WriteString("end\n")
	}
	w.spec = b.String()

	// K loop edges (i, i): the baseline excludes the diagonal, so inserts
	// are new rows and the matching deletes restore the baseline exactly.
	k := 8
	if k > dom {
		k = dom
	}
	tuples := make([][]int, k)
	values := make([]float64, k)
	for i := range tuples {
		tuples[i] = []int{i, i}
		values[i] = 1
	}
	batches := []server.DeltaData{
		{Factor: 0, Op: "insert", Tuples: tuples, Values: values},
		{Factor: 1, Op: "insert", Tuples: tuples, Values: values},
		{Factor: 0, Op: "delete", Tuples: tuples},
		{Factor: 1, Op: "delete", Tuples: tuples},
	}

	q, err := spec.Parse(strings.NewReader(w.spec))
	if err != nil {
		return w, fmt.Errorf("shape %s: %v", name, err)
	}
	cur := append([]*factor.Factor[float64](nil), q.Factors...)
	oracle := func() (*factor.Factor[float64], error) {
		nq := *q
		nq.Factors = append([]*factor.Factor[float64](nil), cur...)
		opts := core.DefaultOptions()
		opts.Workers = 1
		res, _, err := core.Solve(&nq, opts)
		if err != nil {
			return nil, err
		}
		return res.Output, nil
	}
	base, err := oracle()
	if err != nil {
		return w, fmt.Errorf("shape %s oracle: %v", name, err)
	}
	w.seedVerify = deltaOutputVerifier(base)

	for _, dd := range batches {
		op := factor.DeltaInsert
		if dd.Op == "delete" {
			op = factor.DeltaDelete
		}
		rows := make([]int32, 0, len(dd.Tuples)*2)
		for _, tup := range dd.Tuples {
			rows = append(rows, int32(tup[0]), int32(tup[1]))
		}
		nf, err := cur[dd.Factor].ApplyDelta(q.D, factor.Delta[float64]{
			Op: op, Rows: rows, Values: dd.Values}, nil)
		if err != nil {
			return w, fmt.Errorf("shape %s step oracle: %v", name, err)
		}
		cur[dd.Factor] = nf
		want, err := oracle()
		if err != nil {
			return w, fmt.Errorf("shape %s step oracle: %v", name, err)
		}
		frame := &wire.DeltaFrame{Op: wire.DeltaOpInsert, Domain: wire.DomainFloat,
			Factor: dd.Factor, Arity: 2, Rows: rows, Floats: dd.Values}
		if op == factor.DeltaDelete {
			frame.Op = wire.DeltaOpDelete
			frame.Floats = nil
		}
		w.steps = append(w.steps, deltaStep{
			deltas: []server.DeltaData{dd},
			frames: []*wire.DeltaFrame{frame},
			verify: deltaOutputVerifier(want),
		})
	}
	// The cycle must end where it started, or long runs would drift.
	if !cur[0].Equal(q.D, q.Factors[0]) || !cur[1].Equal(q.D, q.Factors[1]) {
		return w, fmt.Errorf("shape %s: delta cycle does not return to baseline", name)
	}
	return w, nil
}

// deltaOutputVerifier holds a maintained listing response to the expected
// output, row for row and bit for bit.
func deltaOutputVerifier(want *factor.Factor[float64]) func(*server.DeltaResponse) error {
	wantTuples := want.Tuples()
	wantVals := want.Values
	return func(resp *server.DeltaResponse) error {
		if resp.Output == nil {
			return fmt.Errorf("no output in delta response")
		}
		vals, err := resp.Output.FloatValues()
		if err != nil {
			return err
		}
		if len(resp.Output.Tuples) != len(wantTuples) || len(vals) != len(wantVals) {
			return fmt.Errorf("output has %d rows, want %d", len(resp.Output.Tuples), len(wantTuples))
		}
		for i, tup := range wantTuples {
			for j := range tup {
				if resp.Output.Tuples[i][j] != tup[j] {
					return fmt.Errorf("row %d: tuple %v, want %v", i, resp.Output.Tuples[i], tup)
				}
			}
			if math.Float64bits(vals[i]) != math.Float64bits(wantVals[i]) {
				return fmt.Errorf("row %d: value %v, want %v", i, vals[i], wantVals[i])
			}
		}
		return nil
	}
}

// triangleEdgeFrame is the triangleSpec edge relation as one wire frame:
// the upload body of dataset workloads.
func triangleEdgeFrame(dom int) *wire.Frame {
	f := &wire.Frame{Domain: wire.DomainFloat, Arity: 2}
	for a := 0; a < dom; a++ {
		for c := 0; c < dom; c++ {
			if (a*7+c*3)%5 == 0 && a != c {
				f.Rows = append(f.Rows, int32(a), int32(c))
				f.Floats = append(f.Floats, 1)
			}
		}
	}
	return f
}

// datasetTriangleSpec is the triangle query against a resident dataset:
// same shape and data as triangleSpec, zero factor bytes in the spec.
func datasetTriangleSpec(name string, dom int) string {
	return fmt.Sprintf("use %s\nvar x %d sum\nvar y %d sum\nvar z %d sum\n"+
		"factor x y @0\nfactor y z @1\nfactor x z @2\n", name, dom, dom, dom)
}

// datasetName keys the uploaded triangle dataset by domain size, so runs
// with different -dom never read each other's data.
func datasetName(dom int) string { return fmt.Sprintf("faqload-tri-%d", dom) }

// datasetWorkload builds the triangle-dataset drive target: setup uploads
// the triangle edge relations as a named dataset, and every request runs
// the `use`-spec against the server's resident mapped factors — the
// query-by-name path bench-store compares against triangle-fresh.  The
// oracle is the same local solve as "triangle" (identical data), so each
// response is verified bit for bit.
func datasetWorkload(name string, dom int) (workload, error) {
	dsName := datasetName(dom)
	w := workload{name: name, spec: datasetTriangleSpec(dsName, dom), wireDom: wire.DomainFloat}
	q, err := spec.Parse(strings.NewReader(triangleSpec(dom)))
	if err != nil {
		return w, fmt.Errorf("shape %s: %v", name, err)
	}
	want, err := solveScalar(q)
	if err != nil {
		return w, fmt.Errorf("shape %s oracle: %v", name, err)
	}
	w.verify = floatVerifier(want)
	w.setup = func(ctx context.Context, client *server.Client) error {
		f := triangleEdgeFrame(dom)
		_, err := client.PutDataset(ctx, dsName, []*wire.Frame{f, f, f})
		return err
	}
	return w, nil
}

// smokeDataset is the persistence handshake of the serve-smoke gate.  In
// "put" mode it uploads the triangle dataset and runs one verified
// dataset query; in "cold" mode it uploads nothing — the dataset must
// already be resident, loaded from disk by a restarted daemon — and runs
// the same verified query, proving the warm restart serves correct
// results from the mapped file.
func smokeDataset(ctx context.Context, client *server.Client, cfg config, out *os.File) error {
	w, err := buildWorkload("triangle-dataset", cfg.dom)
	if err != nil {
		return err
	}
	if cfg.smokeDataset == "put" {
		if err := w.setup(ctx, client); err != nil {
			return err
		}
	}
	resp, err := client.Query(ctx, &server.QueryRequest{Spec: w.spec})
	if err != nil {
		return err
	}
	if err := w.verify(resp); err != nil {
		return fmt.Errorf("dataset smoke query (%s): %v", cfg.smokeDataset, err)
	}
	st, err := client.Statsz(ctx)
	if err != nil {
		return err
	}
	if st.Store == nil {
		return fmt.Errorf("dataset smoke: /statsz reports no store section")
	}
	if st.Store.Datasets < 1 {
		return fmt.Errorf("dataset smoke: /statsz reports %d datasets, want >= 1", st.Store.Datasets)
	}
	if st.Store.DatasetQueries < 1 {
		return fmt.Errorf("dataset smoke: /statsz reports %d dataset queries, want >= 1", st.Store.DatasetQueries)
	}
	v, _ := resp.FloatValue()
	fmt.Fprintf(out, "dataset smoke ok (%s): value=%g datasets=%d bytes_mapped=%d dataset_queries=%d\n",
		cfg.smokeDataset, v, st.Store.Datasets, st.Store.BytesMapped, st.Store.DatasetQueries)
	return nil
}

// solveScalar runs the local single-threaded oracle.
func solveScalar[V any](q *core.Query[V]) (V, error) {
	opts := core.DefaultOptions()
	opts.Workers = 1
	res, _, err := core.Solve(q, opts)
	if err != nil {
		var zero V
		return zero, err
	}
	return res.Scalar(), nil
}

// triangleSpec is Σ ψ(x,y)·ψ(y,z)·ψ(x,z) over a deterministic edge set.
func triangleSpec(dom int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "var x %d sum\nvar y %d sum\nvar z %d sum\n", dom, dom, dom)
	edge := func(u, v string) {
		fmt.Fprintf(&b, "factor %s %s\n", u, v)
		for a := 0; a < dom; a++ {
			for c := 0; c < dom; c++ {
				if (a*7+c*3)%5 == 0 && a != c {
					fmt.Fprintf(&b, "%d %d = 1\n", a, c)
				}
			}
		}
		b.WriteString("end\n")
	}
	edge("x", "y")
	edge("y", "z")
	edge("x", "z")
	return b.String()
}

// tropicalTriangleSpec is min_{x,y,z} ψ(x,y)+ψ(y,z)+ψ(x,z): the cheapest
// triangle under per-edge costs.
func tropicalTriangleSpec(dom int) string {
	var b strings.Builder
	b.WriteString("domain tropical\n")
	fmt.Fprintf(&b, "var x %d min\nvar y %d min\nvar z %d min\n", dom, dom, dom)
	for _, e := range [][2]string{{"x", "y"}, {"y", "z"}, {"x", "z"}} {
		fmt.Fprintf(&b, "factor %s %s\n", e[0], e[1])
		for a := 0; a < dom; a++ {
			for c := 0; c < dom; c++ {
				if (a*7+c*3)%5 == 0 && a != c {
					fmt.Fprintf(&b, "%d %d = %d.5\n", a, c, 1+(a+2*c)%9)
				}
			}
		}
		b.WriteString("end\n")
	}
	return b.String()
}

// starSpec is Σ_c Σ_l1..l3 ψ(c,l1)·ψ(c,l2)·ψ(c,l3): a 3-leaf star join.
func starSpec(dom int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "var c %d sum\n", dom)
	for i := 1; i <= 3; i++ {
		fmt.Fprintf(&b, "var l%d %d sum\n", i, dom)
	}
	for i := 1; i <= 3; i++ {
		fmt.Fprintf(&b, "factor c l%d\n", i)
		for a := 0; a < dom; a++ {
			for c := 0; c < dom; c++ {
				if (a*11+c*(2+i))%7 == 0 {
					fmt.Fprintf(&b, "%d %d = 1\n", a, c)
				}
			}
		}
		b.WriteString("end\n")
	}
	return b.String()
}

// chainSpec is a 4-variable path query Σ ψ(a,b)·ψ(b,c)·ψ(c,d).
func chainSpec(dom int) string {
	var b strings.Builder
	for _, n := range []string{"a", "b", "c", "d"} {
		fmt.Fprintf(&b, "var %s %d sum\n", n, dom)
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		fmt.Fprintf(&b, "factor %s %s\n", e[0], e[1])
		for a := 0; a < dom; a++ {
			for c := 0; c < dom; c++ {
				if (a*5+c*3)%6 == 0 {
					fmt.Fprintf(&b, "%d %d = 1\n", a, c)
				}
			}
		}
		b.WriteString("end\n")
	}
	return b.String()
}
