// faqd is the FAQ serving daemon: an HTTP front end over one shared
// engine runtime, amortizing the Section 6–7 planning phase across every
// client that asks the same query shape — the "questions asked
// frequently" workload as a network service.  Queries may declare any
// value domain (float, int, bool, tropical); every domain is served
// through one shared plan cache, and fresh factor data arrives as JSON or
// as the binary factor framing of internal/wire (Content-Type:
// application/x-faq-factors).  docs/PROTOCOL.md is the wire reference.
//
// Usage:
//
//	faqd [-addr :8080] [-workers n] [-plan-cache n] [-planner auto]
//	     [-timeout 30s] [-max-timeout 0] [-max-inflight n] [-max-sessions n]
//	     [-addr-file path] [-data dir] [-slow-query d] [-slow-query-log path]
//	     [-debug-addr addr]
//
// Endpoints:
//
//	POST /v1/query   run a spec-format query (JSON or binary factor stream)
//	POST /v1/delta   apply a delta batch to an evolving query session
//	GET  /v1/plan    plan report (?example=6.2 | POST {"spec": ...})
//	PUT  /v1/datasets/{name}    store a factor stream as a named dataset
//	GET  /v1/datasets[/{name}]  list datasets / describe one
//	DELETE /v1/datasets/{name}  remove a dataset
//	GET  /healthz    liveness
//	GET  /statsz     engine + server counters, latency percentiles
//	GET  /metrics    Prometheus text exposition (see docs/PROTOCOL.md)
//
// With -data <dir>, uploaded datasets persist as checksummed .faqds files
// under the directory and are memory-mapped back on restart: a spec with
// `use <dataset>` queries them with zero factor bytes on the wire.
//
// -slow-query d logs a JSON line (with the full stage trace) for every
// query slower than d to -slow-query-log (stderr by default); d=0 logs
// every query.  -debug-addr opens a second listener serving only
// net/http/pprof, kept off the public address, and turns on pprof
// execution labels (endpoint, domain, shape) so CPU profiles attribute
// samples to what was being served.
//
// -addr :0 picks a free port; the bound address is printed on stdout and,
// with -addr-file, written to a file so scripts can find it.  SIGINT and
// SIGTERM trigger a graceful shutdown that drains in-flight queries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/faqdb/faq/internal/server"
)

// config collects the flag values.
type config struct {
	addr        string
	addrFile    string
	workers     int
	planCache   int
	planner     string
	timeout     time.Duration
	maxTimeout  time.Duration
	drainGrace  time.Duration
	maxInflight int
	maxSessions int
	dataDir     string
	slowQuery   time.Duration
	slowLog     string
	debugAddr   string
}

// validate delegates to the one authoritative check in server.Config, so
// the planner whitelist has a single home; here it just buys the
// flag-error exit code (2) and a usage print.
func (c config) validate() error {
	return server.Config{Workers: c.workers, Planner: c.planner, MaxInflight: c.maxInflight}.Validate()
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address (:0 picks a free port)")
	flag.StringVar(&cfg.addrFile, "addr-file", "", "write the bound address to this file once listening")
	flag.IntVar(&cfg.workers, "workers", 0, "engine pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.IntVar(&cfg.planCache, "plan-cache", 0, "plan LRU capacity (0 = default, negative disables)")
	flag.StringVar(&cfg.planner, "planner", "auto", "ordering strategy: auto, exact, greedy, approx or expression")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "default per-query deadline")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", 0, "clamp client-requested deadlines (0 = no clamp)")
	flag.DurationVar(&cfg.drainGrace, "drain-grace", 30*time.Second, "shutdown drain budget for in-flight queries")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "bound concurrent query runs; beyond it respond 429 (0 = unbounded)")
	flag.IntVar(&cfg.maxSessions, "max-sessions", 0, "bound the delta-session registry, LRU-evicting beyond it (0 = default 256)")
	flag.StringVar(&cfg.dataDir, "data", "", "dataset directory: persist uploads and mmap-serve them by name (empty disables)")
	flag.DurationVar(&cfg.slowQuery, "slow-query", -1, "log queries slower than this with their stage trace (0 logs all, negative disables)")
	flag.StringVar(&cfg.slowLog, "slow-query-log", "", "slow-query log destination, appended as JSON lines (empty = stderr)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve net/http/pprof on this separate address and label profiles (empty disables)")
	flag.Parse()
	if err := cfg.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "faqd: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Once shutdown begins, restore default signal disposition so a second
	// SIGINT/SIGTERM force-kills instead of being swallowed mid-drain.
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run starts the daemon and blocks until ctx is cancelled (the signal
// handler in main, or a test's cancel), then shuts down gracefully: the
// listener closes, in-flight queries drain within drainGrace, and the
// engine pool stops.
func run(ctx context.Context, cfg config, out *os.File) error {
	scfg := server.Config{
		Workers:        cfg.workers,
		PlanCacheSize:  cfg.planCache,
		Planner:        cfg.planner,
		DefaultTimeout: cfg.timeout,
		MaxTimeout:     cfg.maxTimeout,
		MaxInflight:    cfg.maxInflight,
		MaxSessions:    cfg.maxSessions,
		DataDir:        cfg.dataDir,
		ProfileLabels:  cfg.debugAddr != "",
	}
	if cfg.slowQuery >= 0 {
		scfg.SlowQuery = cfg.slowQuery
		scfg.SlowQueryLog = os.Stderr
		if cfg.slowLog != "" {
			f, err := os.OpenFile(cfg.slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("faqd: slow-query log: %w", err)
			}
			defer f.Close()
			scfg.SlowQueryLog = f
		}
	}
	srv, err := server.New(scfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	if st := srv.Store(); st != nil {
		fmt.Fprintf(out, "faqd: dataset store %s: %d datasets, %d bytes mapped\n",
			cfg.dataDir, st.Len(), st.BytesMapped())
		for _, msg := range st.LoadErrors() {
			log.Printf("faqd: dataset load: %s", msg)
		}
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "faqd: listening on %s\n", ln.Addr())
	if cfg.addrFile != "" {
		if err := os.WriteFile(cfg.addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	// The pprof surface gets its own listener so profiling stays off the
	// public address: bind -debug-addr to localhost and the query port can
	// face the world without exposing heap dumps.
	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			ln.Close()
			return err
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ds := &http.Server{Handler: dmux}
		fmt.Fprintf(out, "faqd: pprof on %s\n", dln.Addr())
		go ds.Serve(dln)
		defer ds.Close()
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err // listener failed before any shutdown request
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "faqd: draining (up to %v)\n", cfg.drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainGrace)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("faqd: drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintf(out, "faqd: bye\n")
	return nil
}
