package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/faqdb/faq/internal/server"
)

// TestFaqdServeAndDrain boots the daemon on a free port, serves a query
// through the real listener, then cancels the context and checks the
// graceful-drain path returns cleanly.
func TestFaqdServeAndDrain(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	cfg := config{
		addr:       "127.0.0.1:0",
		addrFile:   addrFile,
		workers:    1,
		planner:    "auto",
		timeout:    10 * time.Second,
		drainGrace: 10 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, os.Stdout) }()

	// The addr file appears once the listener is up.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil {
			addr = string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("addr file never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	c := server.NewClient("http://" + addr)
	if err := c.WaitHealthy(ctx, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	spec := "var x 3 sum\nvar y 3 sum\nfactor x y\n0 1 = 2\n1 2 = 3\nend\n"
	resp, err := c.Query(ctx, &server.QueryRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := resp.FloatValue(); err != nil || v != 5 {
		t.Fatalf("query through faqd: %v, %+v", err, resp)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("faqd did not shut down")
	}
}
