package faq_test

import (
	"context"
	"fmt"

	faq "github.com/faqdb/faq"
)

// ExampleEngine_Prepare shows the serving split the package is named for:
// plan a query shape once, then run it — and re-run it against fresh data
// — without replanning.
func ExampleEngine_Prepare() {
	eng := faq.NewEngine[float64](faq.EngineOptions{Workers: 1})
	defer eng.Close()

	// Triangle count over 3 nodes: Σ_{x,y,z} ψ(x,y)·ψ(y,z)·ψ(x,z) with
	// ψ(a,b) = 1 when a ≠ b — every ordered triple of distinct nodes.
	d := faq.Float()
	domSizes := []int{3, 3, 3} // FromFunc indexes sizes by global variable id
	edge := func(u, v int) *faq.Factor[float64] {
		return faq.FromFunc(d, []int{u, v}, domSizes, func(t []int) float64 {
			if t[0] != t[1] {
				return 1
			}
			return 0
		})
	}
	q := &faq.Query[float64]{
		D: d, NVars: 3, DomSizes: []int{3, 3, 3},
		Aggs: []faq.Aggregate[float64]{
			faq.SemiringAgg(faq.OpFloatSum()),
			faq.SemiringAgg(faq.OpFloatSum()),
			faq.SemiringAgg(faq.OpFloatSum()),
		},
		Factors: []*faq.Factor[float64]{edge(0, 1), edge(1, 2), edge(0, 2)},
	}

	prep, err := eng.Prepare(q) // Section 6–7 planners run here, once
	if err != nil {
		panic(err)
	}
	res, err := prep.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("triangles:", res.Scalar())

	// Fresh same-shape data reuses the cached plan: drop one edge pair.
	sparse := faq.FromFunc(d, []int{0, 1}, domSizes, func(t []int) float64 {
		if t[0] < t[1] {
			return 1
		}
		return 0
	})
	res, err = prep.RunWithFactors(context.Background(),
		[]*faq.Factor[float64]{sparse, edge(1, 2), edge(0, 2)})
	if err != nil {
		panic(err)
	}
	fmt.Println("after refresh:", res.Scalar())

	st := eng.Stats()
	fmt.Println("plans cached:", st.PlansCached, "runs:", st.Runs)
	// Output:
	// triangles: 6
	// after refresh: 3
	// plans cached: 1 runs: 2
}
