// Randomized cross-semiring correctness harness: ~200 random queries per run
// over the Float, Int, Bool and Tropical domains, each checked three ways —
//
//   - InsideOut along the expression order ≡ the BruteForce oracle,
//   - Solve (planned ordering) ≡ the BruteForce oracle,
//   - Workers=1 ≡ Workers>1, asserted bit-identical: the block-parallel
//     executor merges key-range blocks in block order and never re-associates
//     a ⊕-fold, so parallelism must not change a single bit,
//   - Engine.Prepare+Run ≡ Solve, bit-identical on both a sequential and a
//     pooled engine, so the prepared serving path (plan cache + persistent
//     pool) computes exactly what the one-shot path does,
//   - ApplyDeltas after a random batch ≡ BruteForce over the updated
//     factors, so incremental maintenance joins the same oracle loop
//     (faq_delta_test.go soaks this much harder).
//
// The harness is goroutine-leak-checked: engine pools must be gone once
// Close has run.
//
// The parallel threshold is lowered so block scans engage even on these tiny
// instances; `go test -race` (run in CI) makes the harness double as the
// executor's race suite.  Oracle comparisons are exact except on Float,
// where planned orderings may legitimately re-associate ⊕ and ⊗.
package faq

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/faqdb/faq/internal/join"
)

// forceParallelBlocks lowers the block-scan threshold for the duration of a
// test so Workers>1 runs exercise real multi-block scans.
func forceParallelBlocks(t *testing.T) {
	old := join.MinParallelRows
	join.MinParallelRows = 1
	t.Cleanup(func() { join.MinParallelRows = old })
}

// checkGoroutineLeak registers a cleanup asserting the goroutine count
// returns to its pre-test level.  Call it before creating any engines: test
// cleanups run LIFO, so this check fires after Engine.Close has shut the
// worker pools down.  A few retries absorb goroutines still parking.
func checkGoroutineLeak(t *testing.T) {
	t.Helper()
	// Solve/InsideOut run on the shared default engine, whose persistent
	// workers are never reaped (by design).  Grow that pool to the
	// harness's maximum width before snapshotting, so only genuinely
	// leaked goroutines trip the check.
	warm := &Query[bool]{
		D: Bool(), NVars: 1, DomSizes: []int{1}, NumFree: 0,
		Aggs:    []Aggregate[bool]{SemiringAgg(OpOr())},
		Factors: []*Factor[bool]{FromFunc(Bool(), []int{0}, []int{1}, func([]int) bool { return true })},
	}
	wopts := DefaultOptions()
	wopts.Workers = 8
	if _, _, err := Solve(warm, wopts); err != nil {
		t.Fatalf("default-pool warm-up: %v", err)
	}
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		var after int
		for i := 0; i < 50; i++ {
			if after = runtime.NumGoroutine(); after <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before the test, %d after engine shutdown", before, after)
	})
}

// randomQuery draws a small random FAQ instance.  maxOps excludes non-ring
// aggregates (max) whenever a product variable was drawn, so Int stays
// overflow-consistent: + and × are ring ops mod 2⁶⁴, max is not.
func randomQuery[V any](rng *rand.Rand, d *Domain[V], ringOps, allOps []*Op[V],
	allowProduct bool, randVal func(*rand.Rand) V) *Query[V] {

	nvars := 1 + rng.Intn(5)
	numFree := rng.Intn(nvars + 1)
	doms := make([]int, nvars)
	for i := range doms {
		doms[i] = 1 + rng.Intn(4)
	}
	product := -1
	if allowProduct && numFree < nvars && rng.Intn(3) == 0 {
		product = numFree + rng.Intn(nvars-numFree)
	}
	ops := allOps
	if product >= 0 {
		ops = ringOps
	}
	aggs := make([]Aggregate[V], nvars)
	for i := range aggs {
		switch {
		case i < numFree:
			aggs[i] = Free[V]()
		case i == product:
			aggs[i] = ProductAgg[V]()
		default:
			aggs[i] = SemiringAgg(ops[rng.Intn(len(ops))])
		}
	}
	nf := 1 + rng.Intn(4)
	var factors []*Factor[V]
	covered := make([]bool, nvars)
	for i := 0; i < nf; i++ {
		arity := 1 + rng.Intn(min(3, nvars))
		seen := map[int]bool{}
		var vars []int
		for len(vars) < arity {
			v := rng.Intn(nvars)
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
		for i := 1; i < len(vars); i++ { // insertion-sort the variable ids
			for j := i; j > 0 && vars[j] < vars[j-1]; j-- {
				vars[j], vars[j-1] = vars[j-1], vars[j]
			}
		}
		for _, v := range vars {
			covered[v] = true
		}
		factors = append(factors, FromFunc(d, vars, doms, func([]int) V {
			if rng.Float64() < 0.35 {
				return d.Zero
			}
			return randVal(rng)
		}))
	}
	for v, ok := range covered {
		if !ok { // Validate demands every variable occur in some factor
			factors = append(factors, FromFunc(d, []int{v}, doms, func([]int) V { return d.One }))
		}
	}
	return &Query[V]{D: d, NVars: nvars, DomSizes: doms, NumFree: numFree, Aggs: aggs, Factors: factors}
}

// matches compares two output factors value-wise with a domain-appropriate
// equality; absent tuples read as Zero.
func matches[V any](d *Domain[V], got, want *Factor[V], eq func(a, b V) bool) bool {
	if got == nil || want == nil {
		return got == want
	}
	var t []int
	for i := 0; i < got.Size(); i++ {
		t = got.Tuple(i, t)
		if !eq(got.Values[i], want.ValueOrZero(d, t)) {
			return false
		}
	}
	for i := 0; i < want.Size(); i++ {
		t = want.Tuple(i, t)
		if !eq(got.ValueOrZero(d, t), want.Values[i]) {
			return false
		}
	}
	return true
}

func runEquivalence[V any](t *testing.T, seed int64, trials int, d *Domain[V],
	ringOps, allOps []*Op[V], allowProduct bool,
	randVal func(*rand.Rand) V, eq func(a, b V) bool) {

	t.Helper()
	checkGoroutineLeak(t)
	forceParallelBlocks(t)
	engSeq := NewEngine[V](EngineOptions{Workers: 1})
	t.Cleanup(engSeq.Close)
	engPar := NewEngine[V](EngineOptions{Workers: 4})
	t.Cleanup(engPar.Close)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		q := randomQuery(rng, d, ringOps, allOps, allowProduct, randVal)
		opts := DefaultOptions()
		opts.IndicatorProjections = rng.Intn(4) != 0
		opts.FilterOutput = rng.Intn(4) != 0
		seqOpts, parOpts := opts, opts
		seqOpts.Workers = 1
		parOpts.Workers = 2 + rng.Intn(6)

		want, err := BruteForce(q)
		if err != nil {
			t.Fatalf("trial %d: brute force: %v", trial, err)
		}
		wantPar, err := BruteForcePar(q, 3)
		if err != nil {
			t.Fatalf("trial %d: parallel brute force: %v", trial, err)
		}
		if !want.Equal(d, wantPar) {
			t.Fatalf("trial %d: BruteForcePar diverged from BruteForce:\n%v\n%v", trial, want, wantPar)
		}

		order := q.Shape().ExpressionOrder()
		seq, err := InsideOut(q, order, seqOpts)
		if err != nil {
			t.Fatalf("trial %d: sequential InsideOut: %v", trial, err)
		}
		par, err := InsideOut(q, order, parOpts)
		if err != nil {
			t.Fatalf("trial %d: parallel InsideOut (workers=%d): %v", trial, parOpts.Workers, err)
		}
		// Executor invariant: worker count never changes a bit.
		if !seq.Output.Equal(d, par.Output) {
			t.Fatalf("trial %d: Workers=1 and Workers=%d InsideOut outputs differ:\n%v\n%v",
				trial, parOpts.Workers, seq.Output, par.Output)
		}
		// InsideOut along the expression order aggregates groups in the
		// same nesting as the oracle, so the match is domain-exact.
		if !matches(d, seq.Output, want, eq) {
			t.Fatalf("trial %d: InsideOut ≠ BruteForce\nquery: nvars=%d free=%d doms=%v\ngot  %v\nwant %v",
				trial, q.NVars, q.NumFree, q.DomSizes, seq.Output, want)
		}

		solvedSeq, _, err := Solve(q, seqOpts)
		if err != nil {
			t.Fatalf("trial %d: sequential Solve: %v", trial, err)
		}
		solvedPar, _, err := Solve(q, parOpts)
		if err != nil {
			t.Fatalf("trial %d: parallel Solve: %v", trial, err)
		}
		if !solvedSeq.Output.Equal(d, solvedPar.Output) {
			t.Fatalf("trial %d: Workers=1 and Workers=%d Solve outputs differ:\n%v\n%v",
				trial, parOpts.Workers, solvedSeq.Output, solvedPar.Output)
		}
		if !matches(d, solvedSeq.Output, want, eq) {
			t.Fatalf("trial %d: Solve ≠ BruteForce\ngot  %v\nwant %v", trial, solvedSeq.Output, want)
		}

		// Engine invariant: Prepare+Run must reproduce Solve bit-identically
		// on both the sequential and the pooled engine (the plan cache hands
		// shape-identical trials the same plan, so this also soaks the LRU).
		preps := map[string]*PreparedQuery[V]{}
		for name, eng := range map[string]*Engine[V]{"seq": engSeq, "par": engPar} {
			prep, err := eng.PrepareOpts(q, opts)
			if err != nil {
				t.Fatalf("trial %d: %s engine Prepare: %v", trial, name, err)
			}
			pres, err := prep.Run(context.Background())
			if err != nil {
				t.Fatalf("trial %d: %s engine Run: %v", trial, name, err)
			}
			if !pres.Output.Equal(d, solvedSeq.Output) {
				t.Fatalf("trial %d: %s engine Prepare+Run diverged from Solve:\n%v\n%v",
					trial, name, pres.Output, solvedSeq.Output)
			}
			preps[name] = prep
		}

		// Delta interleave: push one random batch through each prepared
		// query's maintenance path and check the maintained output against
		// the brute-force oracle over the updated factors; the two engines
		// must also agree bit-identically with each other.
		deltas, updated := randomDeltaBatches(rng, q, q.Factors, randVal)
		nq := *q
		nq.Factors = updated
		dwant, err := BruteForce(&nq)
		if err != nil {
			t.Fatalf("trial %d: post-delta brute force: %v", trial, err)
		}
		var prevOut *Factor[V]
		for name, prep := range preps {
			dres, err := prep.ApplyDeltas(context.Background(), deltas)
			if err != nil {
				t.Fatalf("trial %d: %s engine ApplyDeltas: %v", trial, name, err)
			}
			if !matches(d, dres.Output, dwant, eq) {
				t.Fatalf("trial %d: %s engine ApplyDeltas (%s) ≠ BruteForce over updated factors\ndeltas: %+v\ngot  %v\nwant %v",
					trial, name, prep.DeltaStrategy(), deltas, dres.Output, dwant)
			}
			if prevOut != nil && !dres.Output.Equal(d, prevOut) {
				t.Fatalf("trial %d: seq and par engines disagree after ApplyDeltas:\n%v\n%v",
					trial, dres.Output, prevOut)
			}
			prevOut = dres.Output
		}
	}
}

func TestEquivalenceFloat(t *testing.T) {
	// Non-negative integer-valued floats: no cancellation, so approximate
	// comparison against the oracle is safe even when the planner picks a
	// different association order.
	approx := func(a, b float64) bool {
		if a == b {
			return true
		}
		diff := math.Abs(a - b)
		return diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
	}
	// OpFloatMin is deliberately absent: min is not a lawful aggregate over
	// (R≥0, ·) with the shared additive identity 0 — min(x, 0) ≠ x — so the
	// sparse engine (min over supported tuples) and the dense oracle (min
	// over the whole box) legitimately disagree.  Lawful min-product lives
	// in the Tropical domain, where Zero = +∞ and min(x, +∞) = x; see
	// TestEquivalenceTropical.
	all := []*Op[float64]{OpFloatSum(), OpFloatMax()}
	ring := []*Op[float64]{OpFloatSum()}
	runEquivalence(t, 1001, 60, Float(), ring, all, true,
		func(rng *rand.Rand) float64 { return float64(1 + rng.Intn(4)) }, approx)
}

func TestEquivalenceInt(t *testing.T) {
	// + and × over int64 are ring ops mod 2⁶⁴, so any evaluation order
	// agrees exactly even if an intermediate wraps; max joins only when no
	// product variable was drawn (randomQuery's ringOps restriction).
	all := []*Op[int64]{OpIntSum(), OpIntMax()}
	ring := []*Op[int64]{OpIntSum()}
	runEquivalence(t, 1002, 50, Int(), ring, all, true,
		func(rng *rand.Rand) int64 { return int64(1 + rng.Intn(3)) },
		func(a, b int64) bool { return a == b })
}

func TestEquivalenceBool(t *testing.T) {
	ops := []*Op[bool]{OpOr()}
	runEquivalence(t, 1003, 40, Bool(), ops, ops, true,
		func(*rand.Rand) bool { return true },
		func(a, b bool) bool { return a == b })
}

func TestEquivalenceTropical(t *testing.T) {
	// Min-plus: ⊗ is +, ⊕ is min, both exact on small integer-valued
	// float64s, so the oracle comparison is exact.
	d := Tropical()
	ops := []*Op[float64]{OpTropicalMin()}
	runEquivalence(t, 1004, 50, d, ops, ops, true,
		func(rng *rand.Rand) float64 { return float64(rng.Intn(6)) },
		func(a, b float64) bool { return d.Equal(a, b) })
}
