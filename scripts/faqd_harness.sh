#!/usr/bin/env bash
# Build faqd + faqload, boot a daemon on a free port, drive it, then shut it
# down gracefully (SIGTERM) and propagate its exit status — so the harness
# also verifies the drain path every time it runs.
#
#   scripts/faqd_harness.sh smoke                  # make serve-smoke / CI gate
#   scripts/faqd_harness.sh bench BENCH_PR3.json       # serving benchmark
#   scripts/faqd_harness.sh benchwire BENCH_PR5.json   # JSON vs binary factor bodies
#   scripts/faqd_harness.sh benchdelta BENCH_PR6.json  # incremental vs full refresh
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-smoke}"
json_out="${2:-BENCH_PR3.json}"

bin="$(mktemp -d)"
addr_file="$bin/addr"
faqd_pid=""
cleanup() {
  [ -n "$faqd_pid" ] && kill "$faqd_pid" 2>/dev/null || true
  [ -n "$faqd_pid" ] && wait "$faqd_pid" 2>/dev/null || true
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/faqd" ./cmd/faqd
go build -o "$bin/faqload" ./cmd/faqload

"$bin/faqd" -addr 127.0.0.1:0 -addr-file "$addr_file" &
faqd_pid=$!

for _ in $(seq 1 100); do
  [ -s "$addr_file" ] && break
  sleep 0.1
done
[ -s "$addr_file" ] || { echo "faqd never wrote $addr_file" >&2; exit 1; }
addr="$(cat "$addr_file")"
echo "harness: faqd at $addr"

case "$mode" in
  smoke)
    "$bin/faqload" -addr "$addr" -smoke
    ;;
  bench)
    "$bin/faqload" -addr "$addr" -concurrency 8 -duration 2s -json "$json_out"
    ;;
  benchwire)
    # The wire-format comparison: every data-shipping shape runs twice
    # (JSON then binary factor bodies), plus the multi-domain shapes that
    # share the float plan cache.
    "$bin/faqload" -addr "$addr" -concurrency 8 -duration 2s -wire both \
      -shapes triangle,triangle-fresh,triangle-int,triangle-tropical -json "$json_out"
    ;;
  benchdelta)
    # The incremental-maintenance comparison: triangle-fresh reprices the
    # whole database per request (binary factor bodies — the PR 5
    # baseline); triangle-delta ships only row changes to per-client
    # /v1/delta sessions, every response verified row for row against a
    # local recompute.
    "$bin/faqload" -addr "$addr" -concurrency 8 -duration 2s -wire both \
      -shapes triangle-fresh,triangle-delta -json "$json_out"
    ;;
  *)
    echo "usage: $0 smoke|bench|benchwire|benchdelta [json-out]" >&2
    exit 2
    ;;
esac

# Graceful shutdown: SIGTERM, then faqd's own exit status.
kill "$faqd_pid"
status=0
wait "$faqd_pid" || status=$?
faqd_pid=""
exit "$status"
