#!/usr/bin/env bash
# Build faqd + faqload, boot a daemon on a free port, drive it, then shut it
# down gracefully (SIGTERM) and propagate its exit status — so the harness
# also verifies the drain path every time it runs.  The daemon always runs
# with a -data directory, so every mode exercises the dataset store, and
# the smoke mode additionally proves cold-restart persistence: upload a
# dataset, SIGTERM the daemon, boot a fresh one over the same directory and
# verify the dataset survived bit for bit.
#
#   scripts/faqd_harness.sh smoke                  # make serve-smoke / CI gate
#   scripts/faqd_harness.sh obssmoke               # make obs-smoke / CI gate
#   scripts/faqd_harness.sh bench BENCH_PR3.json       # serving benchmark
#   scripts/faqd_harness.sh benchwire BENCH_PR5.json   # JSON vs binary factor bodies
#   scripts/faqd_harness.sh benchdelta BENCH_PR6.json  # incremental vs full refresh
#   scripts/faqd_harness.sh benchstore BENCH_PR7.json  # shipped factors vs resident datasets
#   scripts/faqd_harness.sh benchobs BENCH_PR8.json    # tracing overhead + stage breakdowns
#   scripts/faqd_harness.sh benchradix BENCH_PR9.json  # appends a serving probe to the radix record
#   scripts/faqd_harness.sh benchbatch BENCH_PR10.json # /v1/batch vs single-query rps
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-smoke}"
json_out="${2:-BENCH_PR3.json}"

bin="$(mktemp -d)"
addr_file="$bin/addr"
data_dir="$bin/data"
faqd_pid=""
cleanup() {
  [ -n "$faqd_pid" ] && kill "$faqd_pid" 2>/dev/null || true
  [ -n "$faqd_pid" ] && wait "$faqd_pid" 2>/dev/null || true
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/faqd" ./cmd/faqd
go build -o "$bin/faqload" ./cmd/faqload

# boot_faqd starts the daemon over the persistent data directory (plus any
# extra flags) and waits for it to publish its address.
boot_faqd() {
  : > "$addr_file"
  "$bin/faqd" -addr 127.0.0.1:0 -addr-file "$addr_file" -data "$data_dir" "$@" &
  faqd_pid=$!
  for _ in $(seq 1 100); do
    [ -s "$addr_file" ] && break
    sleep 0.1
  done
  [ -s "$addr_file" ] || { echo "faqd never wrote $addr_file" >&2; exit 1; }
  addr="$(cat "$addr_file")"
  echo "harness: faqd at $addr (data $data_dir)"
}

# stop_faqd SIGTERMs the daemon and propagates a drain failure.
stop_faqd() {
  kill "$faqd_pid"
  local status=0
  wait "$faqd_pid" || status=$?
  faqd_pid=""
  [ "$status" -eq 0 ] || { echo "faqd exited $status" >&2; exit "$status"; }
}

# The obs gate boots with the slow-query log catching every request and a
# pprof listener, so the traced smoke can validate all three surfaces.
slow_log="$bin/slow.log"
boot_flags=()
[ "$mode" = obssmoke ] && boot_flags=(-slow-query=0 -slow-query-log "$slow_log" -debug-addr 127.0.0.1:0)
boot_faqd ${boot_flags[@]+"${boot_flags[@]}"}

case "$mode" in
  smoke)
    "$bin/faqload" -addr "$addr" -smoke
    # Persistence round trip: upload a dataset and run a verified query
    # against it, restart the daemon cold over the same -data directory,
    # and verify the mmap-loaded dataset serves the same answer with no
    # re-upload.
    "$bin/faqload" -addr "$addr" -smoke-dataset put
    stop_faqd
    boot_faqd
    "$bin/faqload" -addr "$addr" -smoke-dataset cold
    ;;
  bench)
    "$bin/faqload" -addr "$addr" -concurrency 8 -duration 2s -json "$json_out"
    ;;
  benchwire)
    # The wire-format comparison: every data-shipping shape runs twice
    # (JSON then binary factor bodies), plus the multi-domain shapes that
    # share the float plan cache.
    "$bin/faqload" -addr "$addr" -concurrency 8 -duration 2s -wire both \
      -shapes triangle,triangle-fresh,triangle-int,triangle-tropical -json "$json_out"
    ;;
  benchdelta)
    # The incremental-maintenance comparison: triangle-fresh reprices the
    # whole database per request (binary factor bodies — the PR 5
    # baseline); triangle-delta ships only row changes to per-client
    # /v1/delta sessions, every response verified row for row against a
    # local recompute.
    "$bin/faqload" -addr "$addr" -concurrency 8 -duration 2s -wire both \
      -shapes triangle-fresh,triangle-delta -json "$json_out"
    ;;
  benchstore)
    # The resident-data comparison: triangle-fresh ships the full factor
    # payload per request (JSON and binary — the PR 5/6 baselines);
    # triangle-dataset uploads the same factors once and queries by name,
    # zero factor bytes on the wire, served from the mmap-backed store.
    "$bin/faqload" -addr "$addr" -concurrency 8 -duration 2s -wire both \
      -shapes triangle-fresh,triangle-dataset -json "$json_out"
    ;;
  benchradix)
    # The radix-record serving probe: triangle-fresh (stored-order builds
    # on shipped factors) and triangle-dataset (probe loop over resident
    # tries), appended to the kernel/build benchmarks `make bench-radix`
    # already wrote to the artifact — faqload overwrites its -json file, so
    # it writes to a scratch path that is then concatenated.
    probe_json="$bin/radix-probe.json"
    "$bin/faqload" -addr "$addr" -concurrency 8 -duration 2s -wire binary \
      -shapes triangle-fresh,triangle-dataset -json "$probe_json"
    cat "$probe_json" >> "$json_out"
    ;;
  benchbatch)
    # The batch-protocol comparison on small-query bulk traffic: plain
    # triangle and triangle-fresh at a small domain size, each driven as
    # single queries (JSON and binary bodies) and re-driven as /v1/batch
    # requests of 32 items ("+batch32" rows; the binary variant ships the
    # batch envelope and streams binary result records).  Batch rows count
    # items, so their rps compares directly against the single-query rows
    # — the acceptance ratio is triangle+batch32 vs triangle-fresh+bin.
    "$bin/faqload" -addr "$addr" -concurrency 8 -duration 2s -dom 16 \
      -wire both -batch 32 -shapes triangle,triangle-fresh -json "$json_out"
    ;;
  obssmoke)
    # Observability gate: traced triangle + triangle-dataset queries whose
    # span trees must account for wall time within 10%, a /metrics scrape
    # that must parse as Prometheus text with the stage histograms and
    # shape table, and a slow-query log (every request, -slow-query=0)
    # holding valid JSON entries.
    "$bin/faqload" -addr "$addr" -smoke-obs -slow-log "$slow_log"
    ;;
  benchobs)
    # The observability-overhead record: plain triangle is the cache-hit
    # path with tracing disabled (the ≤1% regression gate), and every row
    # carries a per-stage breakdown from one traced probe query.
    "$bin/faqload" -addr "$addr" -concurrency 8 -duration 2s -wire both -trace \
      -shapes triangle,triangle-fresh,triangle-dataset -json "$json_out"
    ;;
  *)
    echo "usage: $0 smoke|obssmoke|bench|benchwire|benchdelta|benchstore|benchobs|benchradix|benchbatch [json-out]" >&2
    exit 2
    ;;
esac

# Graceful shutdown: SIGTERM, then faqd's own exit status.
stop_faqd
